#include "topo/parse.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace netsel::topo {

namespace {

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_on(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_number(std::string_view text, int line, const char* what) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    throw ParseError(line, std::string("malformed ") + what + ": '" +
                               std::string(text) + "'");
  return value;
}

/// Splits "key=value"; returns false when no '=' present.
bool split_kv(std::string_view token, std::string& key, std::string& value) {
  std::size_t pos = token.find('=');
  if (pos == std::string_view::npos) return false;
  key = std::string(token.substr(0, pos));
  value = std::string(token.substr(pos + 1));
  return true;
}

double parse_bandwidth_at(std::string_view text, int line) {
  auto ends_with = [&](std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
  };
  double scale = 1.0;
  std::string_view digits = text;
  if (ends_with("Gbps")) {
    scale = 1e9;
    digits = text.substr(0, text.size() - 4);
  } else if (ends_with("Mbps")) {
    scale = 1e6;
    digits = text.substr(0, text.size() - 4);
  } else if (ends_with("Kbps")) {
    scale = 1e3;
    digits = text.substr(0, text.size() - 4);
  } else if (ends_with("bps")) {
    digits = text.substr(0, text.size() - 3);
  } else {
    throw ParseError(line, "bandwidth needs a bps/Kbps/Mbps/Gbps suffix: '" +
                               std::string(text) + "'");
  }
  double v = parse_number(digits, line, "bandwidth") * scale;
  if (v <= 0.0) throw ParseError(line, "bandwidth must be > 0");
  return v;
}

double parse_duration_at(std::string_view text, int line) {
  auto ends_with = [&](std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
  };
  double scale = 1.0;
  std::string_view digits = text;
  if (ends_with("us")) {
    scale = 1e-6;
    digits = text.substr(0, text.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1e-3;
    digits = text.substr(0, text.size() - 2);
  } else if (ends_with("s")) {
    digits = text.substr(0, text.size() - 1);
  } else {
    throw ParseError(line, "duration needs an s/ms/us suffix: '" +
                               std::string(text) + "'");
  }
  double v = parse_number(digits, line, "duration") * scale;
  if (v < 0.0) throw ParseError(line, "duration must be >= 0");
  return v;
}

double parse_bytes_at(std::string_view text, int line) {
  auto ends_with = [&](std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
  };
  double scale = 1.0;
  std::string_view digits = text;
  if (ends_with("GB")) {
    scale = 1e9;
    digits = text.substr(0, text.size() - 2);
  } else if (ends_with("MB")) {
    scale = 1e6;
    digits = text.substr(0, text.size() - 2);
  } else if (ends_with("KB")) {
    scale = 1e3;
    digits = text.substr(0, text.size() - 2);
  } else if (ends_with("B")) {
    digits = text.substr(0, text.size() - 1);
  } else {
    throw ParseError(line, "byte size needs a B/KB/MB/GB suffix: '" +
                               std::string(text) + "'");
  }
  double v = parse_number(digits, line, "byte size") * scale;
  if (v <= 0.0) throw ParseError(line, "byte size must be > 0");
  return v;
}

/// Run a graph mutation on behalf of the directive at `line`; graph-level
/// rejections (duplicate names, self loops, non-positive capacities) become
/// ParseErrors citing that line, so every malformed-input diagnostic names
/// the offending line (see docs/TOPO_FORMAT.md).
template <typename Fn>
decltype(auto) at_line(int line, Fn&& fn) {
  try {
    return std::forward<Fn>(fn)();
  } catch (const std::invalid_argument& e) {
    throw ParseError(line, e.what());
  }
}

}  // namespace

ParseError::ParseError(int line, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line) {}

double parse_bandwidth(std::string_view text) {
  return parse_bandwidth_at(text, 0);
}

double parse_duration(std::string_view text) {
  return parse_duration_at(text, 0);
}

double parse_bytes(std::string_view text) { return parse_bytes_at(text, 0); }

TopologyGraph parse_topology(std::string_view text) {
  TopologyGraph g;
  int line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    // Strip comments.
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    auto tokens = split_ws(line);
    if (tokens.empty()) {
      if (end == text.size()) break;
      continue;
    }

    if (tokens[0] == "node") {
      if (tokens.size() < 3)
        throw ParseError(line_no, "node needs: node <name> <kind> [options]");
      const std::string& name = tokens[1];
      const std::string& kind = tokens[2];
      if (kind == "router" || kind == "switch") {
        if (tokens.size() > 3)
          throw ParseError(line_no, "network nodes take no options");
        at_line(line_no, [&] { return g.add_network(name); });
      } else if (kind == "compute") {
        double capacity = 1.0;
        double memory = 0.0;
        std::vector<std::string> tags;
        for (std::size_t t = 3; t < tokens.size(); ++t) {
          std::string key, value;
          if (!split_kv(tokens[t], key, value))
            throw ParseError(line_no, "expected key=value, got '" + tokens[t] + "'");
          if (key == "capacity") {
            capacity = parse_number(value, line_no, "capacity");
          } else if (key == "memory") {
            memory = parse_bytes_at(value, line_no);
          } else if (key == "tags") {
            tags = split_on(value, ',');
          } else {
            throw ParseError(line_no, "unknown node option '" + key + "'");
          }
        }
        at_line(line_no, [&] {
          NodeId id = g.add_compute(name, capacity, std::move(tags));
          if (memory > 0.0) g.set_memory(id, memory);
        });
      } else {
        throw ParseError(line_no,
                         "node kind must be compute/router/switch, got '" +
                             kind + "'");
      }
    } else if (tokens[0] == "link") {
      if (tokens.size() < 4)
        throw ParseError(line_no, "link needs: link <a> <b> <bw> [options]");
      auto a = g.find_node(tokens[1]);
      auto b = g.find_node(tokens[2]);
      if (!a) throw ParseError(line_no, "unknown node '" + tokens[1] + "'");
      if (!b) throw ParseError(line_no, "unknown node '" + tokens[2] + "'");
      TopologyGraph::LinkSpec spec;
      auto caps = split_on(tokens[3], '/');
      if (caps.size() > 2)
        throw ParseError(line_no, "bandwidth is <bw> or <bw>/<bw-back>");
      spec.capacity_ab = parse_bandwidth_at(caps[0], line_no);
      spec.capacity_ba =
          caps.size() == 2 ? parse_bandwidth_at(caps[1], line_no) : 0.0;
      for (std::size_t t = 4; t < tokens.size(); ++t) {
        std::string key, value;
        if (!split_kv(tokens[t], key, value))
          throw ParseError(line_no, "expected key=value, got '" + tokens[t] + "'");
        if (key == "latency") {
          spec.latency = parse_duration_at(value, line_no);
        } else if (key == "name") {
          spec.name = value;
        } else {
          throw ParseError(line_no, "unknown link option '" + key + "'");
        }
      }
      at_line(line_no, [&] { return g.add_link(*a, *b, std::move(spec)); });
    } else {
      throw ParseError(line_no, "unknown directive '" + tokens[0] + "'");
    }
    if (end == text.size()) break;
  }
  g.validate();
  return g;
}

std::string format_topology(const TopologyGraph& g) {
  std::ostringstream os;
  // Removed (tombstoned) nodes and links are skipped: the serialised form
  // describes the present topology, so a mutated graph round-trips to an
  // equivalent graph with compacted ids.
  os << "# " << g.node_count() << " nodes, " << g.link_count() << " links\n";
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    if (g.node_removed(static_cast<NodeId>(i))) continue;
    const Node& n = g.node(static_cast<NodeId>(i));
    if (n.kind == NodeKind::Network) {
      os << "node " << n.name << " router\n";
    } else {
      os << "node " << n.name << " compute capacity=" << n.cpu_capacity;
      if (n.memory_bytes > 0.0) os << " memory=" << n.memory_bytes << "B";
      if (!n.tags.empty()) {
        os << " tags=";
        for (std::size_t t = 0; t < n.tags.size(); ++t)
          os << (t ? "," : "") << n.tags[t];
      }
      os << "\n";
    }
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    if (g.link_removed(static_cast<LinkId>(l))) continue;
    const Link& lk = g.link(static_cast<LinkId>(l));
    os << "link " << g.node(lk.a).name << " " << g.node(lk.b).name << " "
       << lk.capacity_ab / 1e6 << "Mbps";
    if (lk.capacity_ba != lk.capacity_ab)
      os << "/" << lk.capacity_ba / 1e6 << "Mbps";
    if (lk.latency > 0.0) os << " latency=" << lk.latency << "s";
    os << "\n";
  }
  return os.str();
}

}  // namespace netsel::topo
