#pragma once
// Text format for topology descriptions, so tools and experiments can load
// testbeds without recompiling. One directive per line:
//
//   # comment (also trailing)
//   node <name> compute [capacity=<x>] [memory=<bytes>] [tags=a,b,c]
//   node <name> router|switch
//   link <a> <b> <bw>[/<bw-back>] [latency=<t>] [name=<s>]
//
// Bandwidths accept bps/Kbps/Mbps/Gbps suffixes (e.g. 100Mbps, 1.5Gbps);
// latencies accept s/ms/us (e.g. 0.2ms). Example:
//
//   node panama router
//   node m-1 compute capacity=1.0 tags=alpha
//   link m-1 panama 100Mbps latency=0.05ms
//   link gibraltar suez 155Mbps name=atm

#include <stdexcept>
#include <string>
#include <string_view>

#include "topo/graph.hpp"

namespace netsel::topo {

/// Parse failure with a 1-based line number and explanation.
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message);
  int line() const { return line_; }

 private:
  int line_;
};

/// Parse a topology description; throws ParseError — citing the 1-based
/// line of the offending directive — for malformed input *and* for
/// graph-level violations (duplicate names, self loops, bad capacities).
/// Whole-file violations with no single offending line (empty graph,
/// disconnected graph, no compute nodes) surface as std::invalid_argument
/// from the final validation. See docs/TOPO_FORMAT.md for the grammar.
TopologyGraph parse_topology(std::string_view text);

/// Parse a bandwidth like "100Mbps", "2.5Gbps", "800000bps" to bits/second.
double parse_bandwidth(std::string_view text);

/// Parse a duration like "0.2ms", "5us", "1.5s" to seconds.
double parse_duration(std::string_view text);

/// Parse a byte size like "512MB", "2GB", "64KB", "100B" to bytes.
double parse_bytes(std::string_view text);

/// Serialise a graph back to the text format (round-trips with
/// parse_topology up to formatting).
std::string format_topology(const TopologyGraph& g);

}  // namespace netsel::topo
