#include "topo/routing.hpp"

#include <queue>
#include <stdexcept>

namespace netsel::topo {

RoutingTable::RoutingTable(const TopologyGraph& g)
    : graph_(&g), n_(g.node_count()), next_link_(n_ * n_, kInvalidLink) {
  // BFS from every destination; record, for each src, the link toward dst.
  // Iterating neighbours in incident-list order with a FIFO queue yields
  // deterministic shortest paths with ties broken toward links added first.
  std::vector<int> dist(n_);
  for (std::size_t dst = 0; dst < n_; ++dst) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<NodeId> q;
    auto d = static_cast<NodeId>(dst);
    dist[dst] = 0;
    q.push(d);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      for (LinkId l : g.links_of(u)) {
        NodeId v = g.other_end(l, u);
        if (dist[static_cast<std::size_t>(v)] == -1) {
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          // From v, the first hop toward dst is the link v--u.
          next_link_[static_cast<std::size_t>(v) * n_ + dst] = l;
          q.push(v);
        }
      }
    }
    for (std::size_t src = 0; src < n_; ++src) {
      if (dist[src] == -1)
        throw std::invalid_argument("RoutingTable: graph is disconnected");
    }
  }
}

std::vector<LinkId> RoutingTable::route(NodeId src, NodeId dst) const {
  std::vector<LinkId> out;
  NodeId u = src;
  while (u != dst) {
    LinkId l = next_link_[idx(u, dst)];
    if (l == kInvalidLink)
      throw std::logic_error("RoutingTable: missing next hop");
    out.push_back(l);
    u = graph_->other_end(l, u);
  }
  return out;
}

std::vector<NodeId> RoutingTable::route_nodes(NodeId src, NodeId dst) const {
  std::vector<NodeId> out{src};
  NodeId u = src;
  while (u != dst) {
    LinkId l = next_link_[idx(u, dst)];
    u = graph_->other_end(l, u);
    out.push_back(u);
  }
  return out;
}

std::size_t RoutingTable::hops(NodeId src, NodeId dst) const {
  std::size_t h = 0;
  NodeId u = src;
  while (u != dst) {
    LinkId l = next_link_[idx(u, dst)];
    u = graph_->other_end(l, u);
    ++h;
  }
  return h;
}

}  // namespace netsel::topo
