#pragma once
// Static routing (paper §3.3, "Cycles in network topology"): networks
// typically use static routing, so a fixed path is taken for all
// communication between a pair of nodes. The routing table fixes one
// shortest path (hop count, deterministic tie-break toward lower node ids)
// per ordered pair; on acyclic graphs this is the unique path.

#include <vector>

#include "topo/graph.hpp"

namespace netsel::topo {

class RoutingTable {
 public:
  /// Build routes for all pairs. O(n * (n + e)) BFS; the graph must be
  /// connected (validate() it first).
  explicit RoutingTable(const TopologyGraph& g);

  /// The links on the route from src to dst, in traversal order. Empty when
  /// src == dst.
  std::vector<LinkId> route(NodeId src, NodeId dst) const;

  /// The nodes on the route from src to dst inclusive of both endpoints.
  std::vector<NodeId> route_nodes(NodeId src, NodeId dst) const;

  /// Hop count (number of links) between src and dst.
  std::size_t hops(NodeId src, NodeId dst) const;

  std::size_t node_count() const { return n_; }

 private:
  std::size_t idx(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * n_ + static_cast<std::size_t>(dst);
  }

  const TopologyGraph* graph_;
  std::size_t n_;
  /// For destination `dst`, next_link_[src*n+dst] is the first link on the
  /// path src -> dst (kInvalidLink when src == dst).
  std::vector<LinkId> next_link_;
};

}  // namespace netsel::topo
