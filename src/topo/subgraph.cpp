#include "topo/subgraph.hpp"

#include <queue>
#include <stdexcept>

namespace netsel::topo {

NodeId LogicalSubgraph::to_sub(NodeId parent) const {
  if (parent < 0 || static_cast<std::size_t>(parent) >= sub_of_parent_.size())
    return kInvalidNode;
  return sub_of_parent_[static_cast<std::size_t>(parent)];
}

LogicalSubgraph extract_subgraph(const TopologyGraph& parent,
                                 const std::vector<NodeId>& nodes) {
  if (nodes.empty())
    throw std::invalid_argument("extract_subgraph: empty node set");
  for (NodeId n : nodes) {
    if (n < 0 || static_cast<std::size_t>(n) >= parent.node_count())
      throw std::invalid_argument("extract_subgraph: node id out of range");
  }

  // Mark links on all pairwise BFS paths (same deterministic paths as the
  // routing table on acyclic graphs).
  std::vector<char> link_in(parent.link_count(), 0);
  std::vector<char> node_in(parent.node_count(), 0);
  for (NodeId n : nodes) node_in[static_cast<std::size_t>(n)] = 1;

  std::vector<LinkId> parent_link_of(parent.node_count(), kInvalidLink);
  std::vector<char> seen(parent.node_count(), 0);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    std::fill(seen.begin(), seen.end(), 0);
    std::fill(parent_link_of.begin(), parent_link_of.end(), kInvalidLink);
    std::queue<NodeId> q;
    q.push(nodes[i]);
    seen[static_cast<std::size_t>(nodes[i])] = 1;
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      for (LinkId l : parent.links_of(u)) {
        NodeId v = parent.other_end(l, u);
        if (seen[static_cast<std::size_t>(v)]) continue;
        seen[static_cast<std::size_t>(v)] = 1;
        parent_link_of[static_cast<std::size_t>(v)] = l;
        q.push(v);
      }
    }
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      NodeId u = nodes[j];
      if (!seen[static_cast<std::size_t>(u)]) continue;  // unreachable pair
      while (u != nodes[i]) {
        LinkId l = parent_link_of[static_cast<std::size_t>(u)];
        link_in[static_cast<std::size_t>(l)] = 1;
        u = parent.other_end(l, u);
        node_in[static_cast<std::size_t>(u)] = 1;
      }
    }
  }

  // Rebuild the pruned graph in parent id order.
  LogicalSubgraph sub;
  sub.sub_of_parent_.assign(parent.node_count(), kInvalidNode);
  for (std::size_t i = 0; i < parent.node_count(); ++i) {
    if (!node_in[i]) continue;
    const Node& n = parent.node(static_cast<NodeId>(i));
    NodeId id;
    if (n.kind == NodeKind::Compute) {
      id = sub.graph.add_compute(n.name, n.cpu_capacity, n.tags);
      if (n.memory_bytes > 0.0) sub.graph.set_memory(id, n.memory_bytes);
    } else {
      id = sub.graph.add_network(n.name);
    }
    sub.sub_of_parent_[i] = id;
    sub.parent_node.push_back(static_cast<NodeId>(i));
  }
  for (std::size_t l = 0; l < parent.link_count(); ++l) {
    if (!link_in[l]) continue;
    const Link& lk = parent.link(static_cast<LinkId>(l));
    TopologyGraph::LinkSpec spec;
    spec.capacity_ab = lk.capacity_ab;
    spec.capacity_ba = lk.capacity_ba;
    spec.latency = lk.latency;
    spec.name = lk.name;
    sub.graph.add_link(sub.sub_of_parent_[static_cast<std::size_t>(lk.a)],
                       sub.sub_of_parent_[static_cast<std::size_t>(lk.b)],
                       std::move(spec));
    sub.parent_link.push_back(static_cast<LinkId>(l));
  }
  return sub;
}

}  // namespace netsel::topo
