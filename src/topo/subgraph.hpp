#pragma once
// Logical sub-topology extraction: Remos presents "a functional snapshot of
// the *relevant part* of the network" (paper §2.2) — for a set of compute
// nodes, that is the union of the static routes among them. The extraction
// preserves names, capacities, latencies and tags, and records the mapping
// back to the parent graph so dynamic annotations can be projected.

#include <vector>

#include "topo/graph.hpp"

namespace netsel::topo {

struct LogicalSubgraph {
  TopologyGraph graph;
  /// Subgraph node id -> parent node id.
  std::vector<NodeId> parent_node;
  /// Subgraph link id -> parent link id.
  std::vector<LinkId> parent_link;

  /// Parent node id -> subgraph node id (kInvalidNode when absent).
  NodeId to_sub(NodeId parent) const;

 private:
  friend LogicalSubgraph extract_subgraph(const TopologyGraph&,
                                          const std::vector<NodeId>&);
  std::vector<NodeId> sub_of_parent_;
};

/// Extract the sub-topology spanned by the pairwise (BFS/static-route)
/// paths among `nodes`. Throws when `nodes` is empty or contains an id out
/// of range; unreachable pairs simply contribute nothing (the result can be
/// disconnected if the parent is).
LogicalSubgraph extract_subgraph(const TopologyGraph& parent,
                                 const std::vector<NodeId>& nodes);

}  // namespace netsel::topo
