#include "topo/synthetic.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace netsel::topo {

namespace {

double draw_capacity(util::Rng& rng, double lo, double hi) {
  return lo == hi ? lo : rng.uniform(lo, hi);
}

}  // namespace

TopologyGraph fat_tree(const FatTreeOptions& opt) {
  if (opt.edge_switches < 1 || opt.hosts_per_edge < 1 || opt.core_switches < 1)
    throw std::invalid_argument("fat_tree: counts must be >= 1");
  if (opt.host_bw <= 0.0 || opt.uplink_bw <= 0.0)
    throw std::invalid_argument("fat_tree: bandwidths must be > 0");
  if (opt.cpu_jitter < 0.0 || opt.cpu_jitter >= 1.0)
    throw std::invalid_argument("fat_tree: cpu_jitter must be in [0, 1)");
  if (opt.host_latency < 0.0 || opt.uplink_latency < 0.0)
    throw std::invalid_argument("fat_tree: latencies must be >= 0");
  util::Rng rng(opt.seed);
  TopologyGraph g;
  std::vector<NodeId> cores;
  cores.reserve(static_cast<std::size_t>(opt.core_switches));
  for (int c = 0; c < opt.core_switches; ++c)
    cores.push_back(g.add_network("core" + std::to_string(c)));
  for (int e = 0; e < opt.edge_switches; ++e) {
    NodeId sw = g.add_network("edge" + std::to_string(e));
    for (NodeId core : cores) {
      TopologyGraph::LinkSpec spec;
      spec.capacity_ab = opt.uplink_bw;
      spec.latency = opt.uplink_latency;
      g.add_link(sw, core, std::move(spec));
    }
    for (int h = 0; h < opt.hosts_per_edge; ++h) {
      double capacity = 1.0;
      if (opt.cpu_jitter > 0.0)
        capacity = rng.uniform(1.0 - opt.cpu_jitter, 1.0 + opt.cpu_jitter);
      NodeId host = g.add_compute(
          "h" + std::to_string(e) + "-" + std::to_string(h), capacity);
      if (opt.memory_bytes > 0.0) g.set_memory(host, opt.memory_bytes);
      TopologyGraph::LinkSpec spec;
      spec.capacity_ab = opt.host_bw;
      spec.latency = opt.host_latency;
      g.add_link(sw, host, std::move(spec));
    }
  }
  g.validate();
  return g;
}

FatTreeOptions fat_tree_for_hosts(int hosts, int switch_ports,
                                  double oversubscription,
                                  std::uint64_t seed) {
  if (hosts < 1) throw std::invalid_argument("fat_tree_for_hosts: hosts < 1");
  if (switch_ports < 2)
    throw std::invalid_argument("fat_tree_for_hosts: need >= 2 ports");
  if (oversubscription <= 0.0)
    throw std::invalid_argument(
        "fat_tree_for_hosts: oversubscription must be > 0");
  // Split the edge switch's ports between downlinks (hosts) and uplinks
  // (one per core switch) at the requested downlink : uplink ratio.
  int down = static_cast<int>(std::lround(
      static_cast<double>(switch_ports) * oversubscription /
      (oversubscription + 1.0)));
  if (down < 1) down = 1;
  if (down > switch_ports - 1) down = switch_ports - 1;
  FatTreeOptions opt;
  opt.hosts_per_edge = down;
  opt.core_switches = switch_ports - down;
  opt.edge_switches = (hosts + down - 1) / down;
  opt.seed = seed;
  return opt;
}

TopologyGraph three_level_fat_tree(const ThreeLevelFatTreeOptions& opt) {
  if (opt.pods < 1 || opt.edge_per_pod < 1 || opt.hosts_per_edge < 1 ||
      opt.agg_per_pod < 1)
    throw std::invalid_argument("three_level_fat_tree: counts must be >= 1");
  if (opt.host_bw <= 0.0 || opt.uplink_bw <= 0.0 || opt.core_bw <= 0.0)
    throw std::invalid_argument(
        "three_level_fat_tree: bandwidths must be > 0");
  if (opt.cpu_jitter < 0.0 || opt.cpu_jitter >= 1.0)
    throw std::invalid_argument(
        "three_level_fat_tree: cpu_jitter must be in [0, 1)");
  if (opt.host_latency < 0.0 || opt.uplink_latency < 0.0 ||
      opt.core_latency < 0.0)
    throw std::invalid_argument(
        "three_level_fat_tree: latencies must be >= 0");
  util::Rng rng(opt.seed);
  TopologyGraph g;
  const int u = opt.agg_per_pod;
  std::vector<NodeId> cores;
  cores.reserve(static_cast<std::size_t>(u) * static_cast<std::size_t>(u));
  for (int c = 0; c < u * u; ++c)
    cores.push_back(g.add_network("core" + std::to_string(c)));
  std::vector<NodeId> aggs(static_cast<std::size_t>(u));
  for (int p = 0; p < opt.pods; ++p) {
    const std::string pod = "p" + std::to_string(p);
    for (int j = 0; j < u; ++j) {
      NodeId agg = g.add_network(pod + "-agg" + std::to_string(j));
      // Plane j: this agg position uplinks to core group j in every pod.
      for (int k = 0; k < u; ++k) {
        TopologyGraph::LinkSpec spec;
        spec.capacity_ab = opt.core_bw;
        spec.latency = opt.core_latency;
        g.add_link(agg, cores[static_cast<std::size_t>(j * u + k)],
                   std::move(spec));
      }
      aggs[static_cast<std::size_t>(j)] = agg;
    }
    for (int e = 0; e < opt.edge_per_pod; ++e) {
      NodeId sw = g.add_network(pod + "-edge" + std::to_string(e));
      for (int j = 0; j < u; ++j) {
        TopologyGraph::LinkSpec spec;
        spec.capacity_ab = opt.uplink_bw;
        spec.latency = opt.uplink_latency;
        g.add_link(sw, aggs[static_cast<std::size_t>(j)], std::move(spec));
      }
      for (int h = 0; h < opt.hosts_per_edge; ++h) {
        double capacity = 1.0;
        if (opt.cpu_jitter > 0.0)
          capacity = rng.uniform(1.0 - opt.cpu_jitter, 1.0 + opt.cpu_jitter);
        NodeId host =
            g.add_compute(pod + "-e" + std::to_string(e) + "-h" +
                              std::to_string(h),
                          capacity);
        if (opt.memory_bytes > 0.0) g.set_memory(host, opt.memory_bytes);
        TopologyGraph::LinkSpec spec;
        spec.capacity_ab = opt.host_bw;
        spec.latency = opt.host_latency;
        g.add_link(sw, host, std::move(spec));
      }
    }
  }
  g.validate();
  return g;
}

ThreeLevelFatTreeOptions three_level_fat_tree_for_hosts(
    long long hosts, int switch_ports, double oversubscription,
    int director_ports, std::uint64_t seed) {
  if (hosts < 1)
    throw std::invalid_argument("three_level_fat_tree_for_hosts: hosts < 1");
  if (switch_ports < 2)
    throw std::invalid_argument(
        "three_level_fat_tree_for_hosts: need >= 2 ports");
  if (oversubscription <= 0.0)
    throw std::invalid_argument(
        "three_level_fat_tree_for_hosts: oversubscription must be > 0");
  if (director_ports < 1)
    throw std::invalid_argument(
        "three_level_fat_tree_for_hosts: director_ports < 1");
  int down = static_cast<int>(std::lround(
      static_cast<double>(switch_ports) * oversubscription /
      (oversubscription + 1.0)));
  if (down < 1) down = 1;
  if (down > switch_ports - 1) down = switch_ports - 1;
  ThreeLevelFatTreeOptions opt;
  opt.hosts_per_edge = down;
  opt.agg_per_pod = switch_ports - down;
  // A pod's aggregation switches fan their downlink ports across the pod's
  // edge switches, so a pod holds d edge switches = d^2 hosts.
  opt.edge_per_pod = down;
  const long long hosts_per_pod =
      static_cast<long long>(down) * static_cast<long long>(down);
  const long long pods = (hosts + hosts_per_pod - 1) / hosts_per_pod;
  if (pods > static_cast<long long>(director_ports))
    throw std::invalid_argument(
        "three_level_fat_tree_for_hosts: pod count exceeds director ports — "
        "use more switch ports or higher oversubscription");
  opt.pods = static_cast<int>(pods);
  opt.seed = seed;
  return opt;
}

TopologyGraph campus_wan(const CampusWanOptions& opt) {
  if (opt.campuses < 1 || opt.buildings_per_campus < 1 ||
      opt.hosts_per_building < 1)
    throw std::invalid_argument("campus_wan: counts must be >= 1");
  if (opt.host_bw <= 0.0 || opt.building_bw <= 0.0 || opt.wan_bw <= 0.0)
    throw std::invalid_argument("campus_wan: bandwidths must be > 0");
  if (opt.wan_latency_min < 0.0 || opt.wan_latency_max < opt.wan_latency_min)
    throw std::invalid_argument("campus_wan: bad WAN latency range");
  if (opt.cpu_capacity_min <= 0.0 ||
      opt.cpu_capacity_max < opt.cpu_capacity_min)
    throw std::invalid_argument("campus_wan: bad capacity range");
  util::Rng rng(opt.seed);
  TopologyGraph g;
  NodeId core = g.add_network("wan-core");
  for (int c = 0; c < opt.campuses; ++c) {
    const std::string campus = "c" + std::to_string(c);
    NodeId gw = g.add_network(campus + "-gw");
    TopologyGraph::LinkSpec trunk;
    trunk.capacity_ab = opt.wan_bw;
    trunk.latency = opt.wan_latency_min == opt.wan_latency_max
                        ? opt.wan_latency_min
                        : rng.uniform(opt.wan_latency_min, opt.wan_latency_max);
    g.add_link(core, gw, std::move(trunk));
    for (int b = 0; b < opt.buildings_per_campus; ++b) {
      const std::string building = campus + "-b" + std::to_string(b);
      NodeId sw = g.add_network(building);
      TopologyGraph::LinkSpec riser;
      riser.capacity_ab = opt.building_bw;
      riser.latency = 50e-6;
      g.add_link(gw, sw, std::move(riser));
      for (int h = 0; h < opt.hosts_per_building; ++h) {
        double capacity =
            draw_capacity(rng, opt.cpu_capacity_min, opt.cpu_capacity_max);
        NodeId host = g.add_compute(building + "-h" + std::to_string(h),
                                    capacity, {"campus" + std::to_string(c)});
        if (opt.memory_scale > 0.0) {
          static constexpr double kSizes[] = {512e6, 1e9, 2e9};
          g.set_memory(host,
                       kSizes[rng.uniform_int(0, 2)] * opt.memory_scale);
        }
        TopologyGraph::LinkSpec drop;
        drop.capacity_ab = opt.host_bw;
        drop.latency = 5e-6;
        g.add_link(sw, host, std::move(drop));
      }
    }
  }
  g.validate();
  return g;
}

TopologyGraph random_core_edge(const RandomCoreEdgeOptions& opt) {
  if (opt.core_switches < 1 || opt.edge_switches < 1 || opt.hosts < 1)
    throw std::invalid_argument("random_core_edge: counts must be >= 1");
  if (opt.uplinks_per_edge < 1)
    throw std::invalid_argument("random_core_edge: uplinks_per_edge < 1");
  if (opt.core_bw_min <= 0.0 || opt.core_bw_max < opt.core_bw_min ||
      opt.host_bw_min <= 0.0 || opt.host_bw_max < opt.host_bw_min ||
      opt.uplink_bw <= 0.0)
    throw std::invalid_argument("random_core_edge: bad bandwidth range");
  if (opt.extra_core_links < 0.0)
    throw std::invalid_argument("random_core_edge: extra_core_links < 0");
  util::Rng rng(opt.seed);
  TopologyGraph g;

  // Random spanning tree over the core (each switch joins a uniformly
  // random earlier one), then chord links for redundancy/cycles.
  std::vector<NodeId> cores;
  cores.reserve(static_cast<std::size_t>(opt.core_switches));
  for (int c = 0; c < opt.core_switches; ++c) {
    NodeId sw = g.add_network("core" + std::to_string(c));
    if (!cores.empty()) {
      NodeId parent = cores[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(cores.size()) - 1))];
      g.add_link(parent, sw,
                 draw_capacity(rng, opt.core_bw_min, opt.core_bw_max));
    }
    cores.push_back(sw);
  }
  const int chords = static_cast<int>(opt.extra_core_links *
                                      static_cast<double>(opt.core_switches));
  if (chords > 0 && opt.core_switches >= 2) {
    std::vector<char> linked(cores.size() * cores.size(), 0);
    for (std::size_t l = 0; l < g.link_count(); ++l) {
      const Link& lk = g.link(static_cast<LinkId>(l));
      if (lk.a < static_cast<NodeId>(cores.size()) &&
          lk.b < static_cast<NodeId>(cores.size())) {
        linked[static_cast<std::size_t>(lk.a) * cores.size() +
               static_cast<std::size_t>(lk.b)] = 1;
        linked[static_cast<std::size_t>(lk.b) * cores.size() +
               static_cast<std::size_t>(lk.a)] = 1;
      }
    }
    // Bounded rejection sampling keeps the build deterministic and finite
    // even when the requested chord count exceeds the free pairs.
    int added = 0;
    for (int attempt = 0; attempt < 20 * chords && added < chords; ++attempt) {
      auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cores.size()) - 1));
      auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cores.size()) - 1));
      if (a == b || linked[a * cores.size() + b]) continue;
      linked[a * cores.size() + b] = 1;
      linked[b * cores.size() + a] = 1;
      g.add_link(cores[a], cores[b],
                 draw_capacity(rng, opt.core_bw_min, opt.core_bw_max));
      ++added;
    }
  }

  // Edge switches multi-home to distinct random core switches (partial
  // Fisher-Yates over the core ids).
  const int uplinks = std::min(opt.uplinks_per_edge, opt.core_switches);
  std::vector<NodeId> deck = cores;
  std::vector<NodeId> edges;
  edges.reserve(static_cast<std::size_t>(opt.edge_switches));
  for (int e = 0; e < opt.edge_switches; ++e) {
    NodeId sw = g.add_network("edge" + std::to_string(e));
    for (int u = 0; u < uplinks; ++u) {
      auto pick = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(u),
          static_cast<std::int64_t>(deck.size()) - 1));
      std::swap(deck[static_cast<std::size_t>(u)], deck[pick]);
      g.add_link(sw, deck[static_cast<std::size_t>(u)], opt.uplink_bw);
    }
    edges.push_back(sw);
  }

  for (int h = 0; h < opt.hosts; ++h) {
    NodeId host = g.add_compute("h" + std::to_string(h));
    NodeId parent = edges[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(edges.size()) - 1))];
    g.add_link(parent, host,
               draw_capacity(rng, opt.host_bw_min, opt.host_bw_max));
  }
  g.validate();
  return g;
}

}  // namespace netsel::topo
