#pragma once
// Synthetic datacenter-scale topology generators.
//
// The paper validates selection on an 18-node testbed (Fig. 4); the
// generators here produce realistic fabrics at any size so the selection
// stack can be exercised (and benchmarked — bench_scale) far beyond it:
//
//   - fat_tree: a two-level fat-tree in the style of Solnushkin's
//     "Automated Design of Two-Layer Fat-Tree Networks" — edge switches
//     each serving a fixed number of hosts, fully meshed to a core layer,
//     parameterised by switch port count and oversubscription. Cyclic for
//     core_switches >= 2 (every edge switch reaches every core switch).
//   - campus_wan: a cluster-of-clusters campus WAN generalising
//     examples/topologies/campus_wan.topo — per-campus gateway routers on a
//     WAN core, building switches under each gateway, heterogeneous host
//     capacities and memory. Acyclic (a tree of stars).
//   - random_core_edge: a seeded random core--edge graph — a connected
//     random core mesh with chord links, edge switches multi-homed to the
//     core, hosts on random edge switches. Cyclic in general.
//
// Every generator is deterministic from the single seed in its options
// struct and returns an ordinary validated TopologyGraph, so snapshots,
// remos, selection, and the .topo serialiser (topo/parse.hpp's
// format_topology) consume the output unchanged.

#include <cstdint>

#include "topo/generators.hpp"
#include "topo/graph.hpp"

namespace netsel::topo {

inline constexpr double kGbps = 1e9;

struct FatTreeOptions {
  /// Bottom-layer switch count; hosts attach here.
  int edge_switches = 8;
  /// Hosts per edge switch (the switch's downlink ports).
  int hosts_per_edge = 8;
  /// Top-layer switch count; every edge switch uplinks to every core
  /// switch (the switch's uplink ports).
  int core_switches = 2;
  /// Host NIC bandwidth.
  double host_bw = k100Mbps;
  /// Per edge->core uplink bandwidth.
  double uplink_bw = kGbps;
  /// One-way latency of host and uplink links.
  double host_latency = 5e-6;
  double uplink_latency = 10e-6;
  /// Host cpu capacities are drawn uniformly from
  /// [1 - cpu_jitter, 1 + cpu_jitter] (0 = homogeneous hosts).
  double cpu_jitter = 0.0;
  /// Physical memory per host in bytes; 0 leaves memory unmodelled.
  double memory_bytes = 0.0;
  std::uint64_t seed = 1;
};

/// Build the two-level fat-tree. Node order: core switches, then per edge
/// switch the switch followed by its hosts. Total nodes =
/// core + edge * (1 + hosts_per_edge).
TopologyGraph fat_tree(const FatTreeOptions& opt = {});

/// Solnushkin-style sizing: dimension a fat-tree for at least `hosts` hosts
/// from `switch_ports`-port edge switches at the given oversubscription
/// ratio (downlink : uplink port count; 1 = non-blocking). Downlinks
/// d = round(ports * r / (r + 1)), uplinks (= core switches) = ports - d,
/// edge switches = ceil(hosts / d). Past ~100k hosts the implied core radix
/// (= edge switch count) leaves real switch territory — size a three-level
/// tree instead (three_level_fat_tree_for_hosts).
FatTreeOptions fat_tree_for_hosts(int hosts, int switch_ports,
                                  double oversubscription,
                                  std::uint64_t seed = 1);

/// Three-level (pod-based) fat-tree, the shape two-level port counts cannot
/// reach: pods of edge switches under per-pod aggregation switches, pods
/// joined by a director-class core. Aggregation plane j (the j-th agg
/// switch of every pod) uplinks to its own group of agg_per_pod core
/// switches, so core count = agg_per_pod^2 and each core's radix equals the
/// pod count — the director-port budget that bounds the design.
struct ThreeLevelFatTreeOptions {
  int pods = 2;
  /// Edge switches per pod; hosts attach here.
  int edge_per_pod = 2;
  /// Hosts per edge switch (edge downlink ports).
  int hosts_per_edge = 4;
  /// Aggregation switches per pod (= edge uplink ports = core group size).
  int agg_per_pod = 2;
  double host_bw = k100Mbps;
  /// Edge -> aggregation uplink bandwidth.
  double uplink_bw = kGbps;
  /// Aggregation -> core trunk bandwidth.
  double core_bw = 4 * kGbps;
  double host_latency = 5e-6;
  double uplink_latency = 10e-6;
  double core_latency = 15e-6;
  /// Host cpu capacities are drawn uniformly from
  /// [1 - cpu_jitter, 1 + cpu_jitter] (0 = homogeneous hosts).
  double cpu_jitter = 0.0;
  double memory_bytes = 0.0;
  std::uint64_t seed = 1;
};

/// Build the three-level fat-tree. Node order: the agg_per_pod^2 core
/// switches, then per pod its aggregation switches followed by, per edge
/// switch, the switch and its hosts. Total nodes = agg_per_pod^2 +
/// pods * (agg_per_pod + edge_per_pod * (1 + hosts_per_edge)).
TopologyGraph three_level_fat_tree(const ThreeLevelFatTreeOptions& opt = {});

/// Size a three-level tree for at least `hosts` hosts: the same
/// downlink/uplink port split as fat_tree_for_hosts gives d hosts per edge
/// and u = ports - d aggregation switches per pod; a pod holds d edge
/// switches (the agg downlink radix), i.e. d^2 hosts, and the pod count —
/// each pod consuming one port on every core — must fit `director_ports`
/// (director-class core switches; throws when even they cannot reach
/// `hosts`). Reaches 1,000,000 hosts from 48-port switches at 3:1.
ThreeLevelFatTreeOptions three_level_fat_tree_for_hosts(
    long long hosts, int switch_ports, double oversubscription,
    int director_ports = 1024, std::uint64_t seed = 1);

struct CampusWanOptions {
  int campuses = 3;
  /// Building (leaf) switches per campus gateway.
  int buildings_per_campus = 2;
  int hosts_per_building = 4;
  double host_bw = k100Mbps;
  /// Building switch -> campus gateway trunk.
  double building_bw = kGbps;
  /// Campus gateway -> WAN core trunk.
  double wan_bw = kGbps;
  /// WAN trunk latencies drawn uniformly from this range (seconds).
  double wan_latency_min = 1e-3;
  double wan_latency_max = 8e-3;
  /// Host cpu capacities drawn uniformly from [min, max].
  double cpu_capacity_min = 0.75;
  double cpu_capacity_max = 1.5;
  /// Host memory drawn from {512MB, 1GB, 2GB} scaled by this factor;
  /// 0 leaves memory unmodelled.
  double memory_scale = 1.0;
  std::uint64_t seed = 1;
};

/// Build the cluster-of-clusters campus WAN (a tree: WAN core, per-campus
/// gateways, building switches, hosts). Hosts carry a per-campus tag
/// ("campus0", "campus1", ...) for placement constraints.
TopologyGraph campus_wan(const CampusWanOptions& opt = {});

struct RandomCoreEdgeOptions {
  int core_switches = 4;
  int edge_switches = 12;
  int hosts = 64;
  /// Core switches each edge switch uplinks to (multi-homing); clamped to
  /// core_switches.
  int uplinks_per_edge = 2;
  /// Chord links added to the random core spanning tree, as a fraction of
  /// core_switches (rounded down). Makes the core cyclic when > 0.
  double extra_core_links = 0.5;
  double core_bw_min = kGbps;
  double core_bw_max = 4 * kGbps;
  double uplink_bw = kGbps;
  double host_bw_min = 10 * kMbps;
  double host_bw_max = k100Mbps;
  std::uint64_t seed = 1;
};

/// Build the seeded random core--edge graph: a random spanning tree over
/// the core plus chords, edge switches multi-homed to distinct random core
/// switches, hosts attached to random edge switches with heterogeneous NIC
/// bandwidths.
TopologyGraph random_core_edge(const RandomCoreEdgeOptions& opt = {});

}  // namespace netsel::topo
