#include "util/distributions.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace netsel::util {

Exponential::Exponential(double mean) : mean_(mean) {
  if (mean <= 0.0) throw std::invalid_argument("Exponential mean must be > 0");
}

double Exponential::sample(Rng& rng) const {
  return rng.exponential_mean(mean_);
}

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "Exponential(mean=" << mean_ << ")";
  return os.str();
}

Pareto::Pareto(double alpha, double x_min) : alpha_(alpha), x_min_(x_min) {
  if (alpha <= 0.0 || x_min <= 0.0)
    throw std::invalid_argument("Pareto requires alpha > 0 and x_min > 0");
}

double Pareto::sample(Rng& rng) const {
  // Inverse transform: x = x_min * U^(-1/alpha), U in (0,1].
  double u = 1.0 - rng.uniform();  // avoid u == 0
  return x_min_ * std::pow(u, -1.0 / alpha_);
}

double Pareto::mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return alpha_ * x_min_ / (alpha_ - 1.0);
}

std::string Pareto::describe() const {
  std::ostringstream os;
  os << "Pareto(alpha=" << alpha_ << ", x_min=" << x_min_ << ")";
  return os.str();
}

BoundedPareto::BoundedPareto(double alpha, double x_min, double x_max)
    : alpha_(alpha), x_min_(x_min), x_max_(x_max) {
  if (alpha <= 0.0 || x_min <= 0.0 || x_max <= x_min)
    throw std::invalid_argument("BoundedPareto requires alpha>0, 0<x_min<x_max");
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse CDF of the truncated Pareto.
  double u = rng.uniform();
  double lmin = std::pow(x_min_, -alpha_);
  double lmax = std::pow(x_max_, -alpha_);
  return std::pow(lmin - u * (lmin - lmax), -1.0 / alpha_);
}

double BoundedPareto::mean() const {
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    // E[X] = ln(x_max/x_min) / (1/x_min - 1/x_max) for alpha == 1.
    return std::log(x_max_ / x_min_) / (1.0 / x_min_ - 1.0 / x_max_);
  }
  double num = std::pow(x_min_, alpha_) * alpha_ *
               (std::pow(x_min_, 1.0 - alpha_) - std::pow(x_max_, 1.0 - alpha_));
  double den = (alpha_ - 1.0) *
               (1.0 - std::pow(x_min_ / x_max_, alpha_));
  return num / den;
}

std::string BoundedPareto::describe() const {
  std::ostringstream os;
  os << "BoundedPareto(alpha=" << alpha_ << ", x_min=" << x_min_
     << ", x_max=" << x_max_ << ")";
  return os.str();
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("LogNormal sigma must be > 0");
}

LogNormal LogNormal::from_mean(double mean, double sigma) {
  if (mean <= 0.0) throw std::invalid_argument("LogNormal mean must be > 0");
  // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
  return LogNormal(std::log(mean) - 0.5 * sigma * sigma, sigma);
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string LogNormal::describe() const {
  std::ostringstream os;
  os << "LogNormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

Mixture::Mixture(DistributionPtr first, DistributionPtr second, double p_first)
    : first_(std::move(first)), second_(std::move(second)), p_first_(p_first) {
  if (!first_ || !second_)
    throw std::invalid_argument("Mixture components must be non-null");
  if (p_first < 0.0 || p_first > 1.0)
    throw std::invalid_argument("Mixture p_first must be in [0,1]");
}

double Mixture::sample(Rng& rng) const {
  return rng.bernoulli(p_first_) ? first_->sample(rng) : second_->sample(rng);
}

double Mixture::mean() const {
  return p_first_ * first_->mean() + (1.0 - p_first_) * second_->mean();
}

std::string Mixture::describe() const {
  std::ostringstream os;
  os << "Mixture(p=" << p_first_ << " " << first_->describe() << " | "
     << second_->describe() << ")";
  return os.str();
}

Constant::Constant(double value) : value_(value) {
  if (value <= 0.0) throw std::invalid_argument("Constant must be > 0");
}

std::string Constant::describe() const {
  std::ostringstream os;
  os << "Constant(" << value_ << ")";
  return os.str();
}

}  // namespace netsel::util
