#pragma once
// Probability distributions used by the load and traffic generators (§4.2 of
// the paper): exponential and Pareto process lifetimes (Harchol-Balter &
// Downey) and LogNormal message sizes.

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace netsel::util {

/// Abstract positive-valued distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draw one sample (always > 0 for the distributions here).
  virtual double sample(Rng& rng) const = 0;
  /// Analytic mean, or a best-effort estimate when the mean diverges
  /// (truncated distributions always have a finite mean).
  virtual double mean() const = 0;
  virtual std::string describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Exponential with the given mean.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);
  double sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string describe() const override;

 private:
  double mean_;
};

/// Pareto with shape alpha and scale x_min: P[X > x] = (x_min/x)^alpha.
/// Harchol-Balter & Downey observed process lifetimes with alpha near 1,
/// i.e. extremely heavy-tailed; such tails are what make "current load"
/// predictive of future load, the property node selection exploits.
class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double x_min);
  double sample(Rng& rng) const override;
  double mean() const override;
  std::string describe() const override;
  double alpha() const { return alpha_; }
  double x_min() const { return x_min_; }

 private:
  double alpha_;
  double x_min_;
};

/// Pareto truncated at x_max (a "bounded Pareto"). Keeps the heavy tail but
/// guarantees a finite mean and bounded simulation horizons.
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double alpha, double x_min, double x_max);
  double sample(Rng& rng) const override;
  double mean() const override;
  std::string describe() const override;

 private:
  double alpha_;
  double x_min_;
  double x_max_;
};

/// LogNormal parameterised by the underlying normal's mu and sigma.
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);
  /// Convenience: construct from the desired mean and the sigma of log X.
  static LogNormal from_mean(double mean, double sigma);
  double sample(Rng& rng) const override;
  double mean() const override;
  std::string describe() const override;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Two-component mixture: with probability `p_first` sample from `first`,
/// else from `second`. Used for the exponential-body + Pareto-tail lifetime
/// model of §4.2.
class Mixture final : public Distribution {
 public:
  Mixture(DistributionPtr first, DistributionPtr second, double p_first);
  double sample(Rng& rng) const override;
  double mean() const override;
  std::string describe() const override;

 private:
  DistributionPtr first_;
  DistributionPtr second_;
  double p_first_;
};

/// Degenerate point mass, handy in tests.
class Constant final : public Distribution {
 public:
  explicit Constant(double value);
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  std::string describe() const override;

 private:
  double value_;
};

}  // namespace netsel::util
