#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace netsel::util {

namespace {
// Atomic so concurrent experiment trials can read the threshold while a
// harness thread (re)configures it, without a data race under TSan.
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Pluggable sink, behind a mutex; log_line copies the shared_ptr under the
// lock and calls outside it, so set_log_sink never waits on a slow sink and
// an in-flight line keeps the sink it resolved alive.
std::mutex g_sink_mu;
std::shared_ptr<const LogSink> g_sink;  // null -> default stderr sink

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = sink ? std::make_shared<const LogSink>(std::move(sink)) : nullptr;
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::shared_ptr<const LogSink> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink) {
    (*sink)(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace netsel::util
