#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace netsel::util {

namespace {
// Atomic so concurrent experiment trials can read the threshold while a
// harness thread (re)configures it, without a data race under TSan.
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace netsel::util
