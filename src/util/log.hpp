#pragma once
// Minimal leveled logging. Simulation code logs through this so tests can
// silence output and benches can turn on tracing.

#include <functional>
#include <sstream>
#include <string>

namespace netsel::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Destination for log lines that pass the threshold. Must be callable from
/// concurrent threads (the default stderr sink is).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Install a sink (tests capture output here instead of scraping stderr);
/// nullptr restores the default single-fprintf-to-stderr sink. Thread-safe
/// against concurrent log_line calls: an in-flight line uses either the old
/// or the new sink, never a torn one.
void set_log_sink(LogSink sink);

/// Emit one line. Safe to call from concurrent experiment trials: the level
/// is an atomic, and the sink is resolved under a mutex only after the line
/// passes the threshold (the common suppressed path takes no lock). The
/// default sink is a single fprintf to stderr, so lines from different
/// threads may interleave in order, never within a line.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace netsel::util

#define NETSEL_LOG(level)                                          \
  if (static_cast<int>(level) < static_cast<int>(::netsel::util::log_level())) \
    ;                                                              \
  else                                                             \
    ::netsel::util::detail::LogMessage(level)

#define NETSEL_LOG_TRACE NETSEL_LOG(::netsel::util::LogLevel::Trace)
#define NETSEL_LOG_DEBUG NETSEL_LOG(::netsel::util::LogLevel::Debug)
#define NETSEL_LOG_INFO NETSEL_LOG(::netsel::util::LogLevel::Info)
#define NETSEL_LOG_WARN NETSEL_LOG(::netsel::util::LogLevel::Warn)
#define NETSEL_LOG_ERROR NETSEL_LOG(::netsel::util::LogLevel::Error)
