#include "util/rng.hpp"

namespace netsel::util {

std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
std::mt19937_64 make_engine(std::uint64_t seed) {
  // Expand the 64-bit seed through SplitMix64 so that nearby seeds give
  // decorrelated initial states (raw mt19937_64 seeding from small integers
  // is notoriously correlated in the first draws).
  SplitMix64 sm(seed);
  std::seed_seq seq{sm.next(), sm.next(), sm.next(), sm.next(),
                    sm.next(), sm.next(), sm.next(), sm.next()};
  return std::mt19937_64(seq);
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(make_engine(seed)) {}

Rng::Rng(std::uint64_t master_seed, std::string_view stream_name)
    : Rng(master_seed ^ hash_name(stream_name)) {}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential_mean(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

Rng Rng::fork(std::string_view stream_name) {
  return Rng(seed_, stream_name);
}

}  // namespace netsel::util
