#pragma once
// Deterministic random number generation for the simulator and generators.
//
// Every stochastic component in netsel draws from an Rng that is seeded from
// a master seed plus a named stream, so that experiments are reproducible
// run-to-run and individual components can be re-seeded independently
// (e.g. the load generator and the traffic generator must not share a
// stream, or toggling one would perturb the other).

#include <cstdint>
#include <random>
#include <string_view>

namespace netsel::util {

/// SplitMix64: fast, well-distributed 64-bit mixer. Used to derive stream
/// seeds from (master seed, stream name) and as the seeding PRNG for the
/// main engine.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a hash of a string, used to derive per-stream seeds from names.
std::uint64_t hash_name(std::string_view name) noexcept;

/// Rng wraps a mersenne twister with convenience draw methods. It satisfies
/// UniformRandomBitGenerator so it can also be handed to <random>
/// distributions directly.
class Rng {
 public:
  using result_type = std::mt19937_64::result_type;

  /// Seed directly from a 64-bit value.
  explicit Rng(std::uint64_t seed);

  /// Derive a stream: same master seed + same name => same sequence.
  Rng(std::uint64_t master_seed, std::string_view stream_name);

  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);
  /// Exponential variate with given mean (NOT rate).
  double exponential_mean(double mean);
  /// Standard normal variate.
  double normal(double mean, double stddev);

  /// Derive an independent child stream deterministically.
  Rng fork(std::string_view stream_name);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace netsel::util
