#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace netsel::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::stderr_mean() const {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::ci_halfwidth(double level) const {
  if (n_ < 2) return 0.0;
  return t_quantile(level, n_ - 1) * stderr_mean();
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {
// Rows: dof; columns: two-sided 90%, 95%, 99%.
struct TRow {
  std::size_t dof;
  double t90, t95, t99;
};
constexpr TRow kTTable[] = {
    {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925},
    {3, 2.353, 3.182, 5.841},   {4, 2.132, 2.776, 4.604},
    {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
    {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355},
    {9, 1.833, 2.262, 3.250},   {10, 1.812, 2.228, 3.169},
    {12, 1.782, 2.179, 3.055},  {15, 1.753, 2.131, 2.947},
    {20, 1.725, 2.086, 2.845},  {25, 1.708, 2.060, 2.787},
    {30, 1.697, 2.042, 2.750},  {40, 1.684, 2.021, 2.704},
    {60, 1.671, 2.000, 2.660},  {120, 1.658, 1.980, 2.617},
    {1000000, 1.645, 1.960, 2.576},
};

double row_value(const TRow& r, double level) {
  if (level <= 0.90) return r.t90;
  if (level <= 0.95) return r.t95;
  return r.t99;
}
}  // namespace

double t_quantile(double level, std::size_t dof) {
  if (dof == 0) throw std::invalid_argument("t_quantile: dof must be >= 1");
  const TRow* lo = &kTTable[0];
  for (const auto& row : kTTable) {
    if (row.dof == dof) return row_value(row, level);
    if (row.dof > dof) {
      // Interpolate in 1/dof, which is close to linear for t quantiles.
      double a = 1.0 / static_cast<double>(lo->dof);
      double b = 1.0 / static_cast<double>(row.dof);
      double x = 1.0 / static_cast<double>(dof);
      double w = (a - x) / (a - b);
      return row_value(*lo, level) * (1.0 - w) + row_value(row, level) * w;
    }
    lo = &row;
  }
  return row_value(kTTable[std::size(kTTable) - 1], level);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p must be in [0,100]");
  std::sort(xs.begin(), xs.end());
  double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(idx));
  auto hi = static_cast<std::size_t>(std::ceil(idx));
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo)
    throw std::invalid_argument("Histogram: need bins >= 1 and hi > lo");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
    counts_[std::min(i, counts_.size() - 1)]++;
  }
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_fraction(std::size_t i) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(i)) /
                           static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t maxc = 1;
  for (auto c : counts_) maxc = std::max(maxc, c);
  std::ostringstream os;
  double bw = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << lo_ + bw * static_cast<double>(i) << ", "
       << lo_ + bw * static_cast<double>(i + 1) << ") ";
    std::size_t bar = counts_[i] * width / maxc;
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace netsel::util
