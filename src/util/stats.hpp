#pragma once
// Statistics utilities for the experiment harness. The paper's Table 1
// entries are averages over many executions spanning hours ("a large number
// of measurements is necessary to have statistically relevant results");
// OnlineStats + confidence intervals reproduce that methodology.

#include <cstddef>
#include <string>
#include <vector>

namespace netsel::util {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (0 when fewer than 2 samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Half-width of the two-sided confidence interval for the mean at the
  /// given level (0.90, 0.95 or 0.99) using Student's t.
  double ci_halfwidth(double level = 0.95) const;
  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t quantile t_{1-(1-level)/2, dof}, from a table with
/// interpolation; exact enough for reporting CIs.
double t_quantile(double level, std::size_t dof);

/// p-th percentile (0..100) of a sample by linear interpolation.
/// The input vector is copied; empty input throws.
double percentile(std::vector<double> xs, double p);

/// Simple fixed-bin histogram for distribution sanity checks in tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  /// Fraction of all samples in bin i.
  double bin_fraction(std::size_t i) const;
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace netsel::util
