#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace netsel::util {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), false});
}

void TextTable::rule() { rows_.push_back({{}, true}); }

void TextTable::align(std::vector<Align> aligns) { aligns_ = std::move(aligns); }

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.is_rule) widen(r.cells);

  auto align_of = [&](std::size_t col) {
    if (col < aligns_.size()) return aligns_[col];
    return col == 0 ? Align::Left : Align::Right;
  };

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      std::string c = i < cells.size() ? cells[i] : "";
      os << (i == 0 ? "| " : " ");
      if (align_of(i) == Align::Left) {
        os << std::left << std::setw(static_cast<int>(widths[i])) << c;
      } else {
        os << std::right << std::setw(static_cast<int>(widths[i])) << c;
      }
      os << " |";
    }
    os << "\n";
  };
  auto emit_rule = [&]() {
    for (std::size_t i = 0; i < ncols; ++i) {
      os << (i == 0 ? "|-" : "-");
      os << std::string(widths[i], '-') << "-|";
    }
    os << "\n";
  };

  if (!header_.empty()) {
    emit(header_);
    emit_rule();
  }
  for (const auto& r : rows_) {
    if (r.is_rule) {
      emit_rule();
    } else {
      emit(r.cells);
    }
  }
  return os.str();
}

std::string fmt(double v, int precision) {
  if (std::isnan(v)) return "n/a";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct_change(double from, double to) {
  std::ostringstream os;
  double pct = from == 0.0 ? 0.0 : (to - from) / from * 100.0;
  os << "(" << (pct >= 0 ? "+" : "") << fmt(pct, 1) << "%)";
  return os.str();
}

std::string fmt_bytes(double bytes) {
  if (!std::isfinite(bytes)) return fmt(bytes, 0) + "B";
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1000.0 && u < 4) {
    bytes /= 1000.0;
    ++u;
  }
  return fmt(bytes, bytes < 10 ? 2 : 1) + units[u];
}

std::string fmt_mbps(double bits_per_second) {
  return fmt(bits_per_second / 1e6, 1) + " Mbps";
}

}  // namespace netsel::util
