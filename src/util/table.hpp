#pragma once
// Plain-text table formatting for the benchmark harnesses, so every bench
// binary can print its table/figure in a form directly comparable with the
// paper.

#include <string>
#include <vector>

namespace netsel::util {

/// Column alignment within a TextTable.
enum class Align { Left, Right };

/// A minimal monospace table builder.
///
///   TextTable t;
///   t.header({"App", "Nodes", "Time"});
///   t.row({"FFT", "4", "48.0"});
///   std::cout << t.render();
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void rule();
  /// Set per-column alignment (default: first column Left, rest Right).
  void align(std::vector<Align> aligns);
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
};

/// Format a double with fixed precision. Non-finite values render as
/// "inf"/"-inf"/"n/a" instead of the platform's ostream spelling, so table
/// cells stay compact and predictable.
std::string fmt(double v, int precision = 1);

/// Format a percentage change like the paper's "(-23.8%)" cells.
std::string fmt_pct_change(double from, double to);

/// Format a byte count in human units (KB/MB/GB, powers of 1000 to match
/// networking convention).
std::string fmt_bytes(double bytes);

/// Format a bandwidth in Mbps.
std::string fmt_mbps(double bits_per_second);

}  // namespace netsel::util
