#include "util/thread_pool.hpp"

#include "obs/metrics.hpp"

namespace netsel::util {

namespace {
// Which pool (if any) the current thread is a worker of, and its queue
// index there. Lets submit() keep a worker's children on its own deque and
// take() start the steal scan away from it.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_queue = 0;

// Sharded counters: updates never contend with the deque locks or across
// workers, and cost one branch each while the registry is disabled.
obs::Counter& tasks_run_counter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.tasks_run");
  return c;
}
obs::Counter& steals_counter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.steals");
  return c;
}
obs::Counter& idle_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.idle_transitions");
  return c;
}
}  // namespace

ThreadPool::ThreadPool(int threads) {
  // Touch the pool counters so all three are registered (and exported,
  // possibly at 0) whenever a pool exists — a single-worker pool that never
  // steals still reports pool.steals: 0 rather than omitting it.
  tasks_run_counter();
  steals_counter();
  idle_counter();
  std::size_t n;
  if (threads < 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 1 : hw;
  } else {
    n = static_cast<std::size_t>(threads);
  }
  // Always at least one deque so a zero-worker pool can still queue jobs
  // for the helping waiter to drain inline.
  queues_.reserve(n == 0 ? 1 : n);
  for (std::size_t i = 0; i < (n == 0 ? 1 : n); ++i)
    queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  std::size_t q = (tl_pool == this)
                      ? tl_queue
                      : next_.fetch_add(1) % queues_.size();
  // pending_ goes up before the push so a sleeping worker woken by the
  // notify always sees pending_ > 0; the worst case is a brief spurious
  // wake while the push is still in flight.
  pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->jobs.push_back(std::move(job));
  }
  // Fence on sleep_mu_ before notifying: a worker that evaluated its wait
  // predicate before the pending_ increment is either still holding the
  // mutex (we block until it is fully asleep and will get the notify) or
  // has re-checked and seen pending_ > 0. Closes the lost-wakeup window.
  { std::lock_guard<std::mutex> lock(sleep_mu_); }
  sleep_cv_.notify_one();
}

bool ThreadPool::take(std::size_t home, bool own_lifo,
                      std::function<void()>& out) {
  const std::size_t n = queues_.size();
  {
    Queue& q = *queues_[home];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.jobs.empty()) {
      if (own_lifo) {
        out = std::move(q.jobs.back());
        q.jobs.pop_back();
      } else {
        out = std::move(q.jobs.front());
        q.jobs.pop_front();
      }
      pending_.fetch_sub(1);
      return true;
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    Queue& q = *queues_[(home + i) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.jobs.empty()) {
      out = std::move(q.jobs.front());
      q.jobs.pop_front();
      pending_.fetch_sub(1);
      steals_counter().inc();
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_run_one() {
  // A worker drains its own deque LIFO (nested fan-outs finish their own
  // children first); an external helper drains FIFO, so a zero-worker pool
  // runs jobs inline in submission order.
  bool is_worker = tl_pool == this;
  std::size_t home = is_worker ? tl_queue : 0;
  std::function<void()> job;
  if (!take(home, is_worker, job)) return false;
  tasks_run_counter().inc();
  job();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_queue = index;
  std::function<void()> job;
  while (true) {
    if (take(index, /*own_lifo=*/true, job)) {
      tasks_run_counter().inc();
      job();
      job = nullptr;  // release captures before sleeping
      continue;
    }
    idle_counter().inc();
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock,
                   [this] { return stop_.load() || pending_.load() > 0; });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

}  // namespace netsel::util
