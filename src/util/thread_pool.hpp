#pragma once
// util::ThreadPool: a small work-stealing thread pool for the experiment
// harness. The Table-1 grid is embarrassingly parallel across trials (each
// trial owns a fresh NetworkSim, Rng and SelectionContext), so the pool only
// has to move closures around cheaply and stay out of the way.
//
// Design:
//   - One deque per worker. A worker pops from the back of its own deque
//     (most recently pushed: cache-warm, and nested fan-outs drain their own
//     children first) and steals from the front of other workers' deques
//     (oldest job: the end a sibling is least likely to touch next).
//   - Submissions from a worker thread land on that worker's own deque;
//     external submissions round-robin across deques.
//   - Waiters help. parallel_for() executes pending jobs on the calling
//     thread while it waits, so nested parallel_for (run_table1 dispatching
//     cells, each cell dispatching trials) cannot deadlock, and a pool with
//     zero workers degenerates to inline serial execution in submission
//     order — the deterministic reference mode used by the tests.
//
// Determinism contract: the pool schedules; it never reorders results.
// Callers that need reproducible output must write results into
// index-addressed slots and reduce in index order (see exp::run_cell).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace netsel::util {

class ThreadPool {
 public:
  /// threads < 0: one worker per hardware thread. threads == 0: no worker
  /// threads at all — every job runs inline on the thread that waits (the
  /// serial reference mode). threads > 0: exactly that many workers.
  explicit ThreadPool(int threads = -1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Enqueue a job for asynchronous execution.
  void submit(std::function<void()> job);

  /// Pop one pending job (own deque first, then steal) and run it on the
  /// calling thread. Returns false if no job was ready.
  bool try_run_one();

  /// Convenience: submit a callable and get its result as a future.
  template <class F>
  auto async(F f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> jobs;
  };

  void worker_loop(std::size_t index);
  /// Take one job: queues_[home] first (back if own_lifo, front otherwise),
  /// else steal from the front of the others. Decrements pending_ on
  /// success.
  bool take(std::size_t home, bool own_lifo, std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_{0};  // round-robin cursor for external submits
  std::atomic<bool> stop_{false};
};

/// Run body(0) .. body(n-1) on the pool and block until all have finished.
/// The calling thread helps execute pending jobs while it waits (nested
/// calls and zero-worker pools therefore make progress). If any body throws,
/// the exception thrown by the lowest index is rethrown after all bodies
/// have completed — deterministic regardless of scheduling.
template <class F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& body) {
  if (n == 0) return;
  struct Shared {
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  // Jobs hold the shared block by value: the last job may still be inside
  // the notify when the waiter returns, so the block must outlive the frame.
  auto shared = std::make_shared<Shared>();
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([shared, &errors, &body, i, n] {
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (shared->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(shared->mu);
        shared->cv.notify_all();
      }
    });
  }
  while (shared->done.load() < n) {
    if (!pool.try_run_one()) {
      std::unique_lock<std::mutex> lock(shared->mu);
      shared->cv.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return shared->done.load() >= n; });
    }
  }
  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

/// Chunked variant for cheap per-index bodies: split [0, n) into contiguous
/// ranges of at least `min_chunk` indices (at most ~4 chunks per execution
/// slot, so submit overhead stays amortised) and run body(lo, hi) once per
/// range. The chunk boundaries depend only on (n, min_chunk, workers()) —
/// never on scheduling — so a body that writes index-addressed slots
/// produces bit-identical results at any thread count, including the
/// zero-worker serial mode.
template <class F>
void parallel_for_chunked(ThreadPool& pool, std::size_t n,
                          std::size_t min_chunk, F&& body) {
  if (n == 0) return;
  if (min_chunk == 0) min_chunk = 1;
  const std::size_t slots = static_cast<std::size_t>(pool.workers()) + 1;
  std::size_t chunks =
      std::min(slots * 4, (n + min_chunk - 1) / min_chunk);
  if (chunks == 0) chunks = 1;
  const std::size_t per = (n + chunks - 1) / chunks;
  parallel_for(pool, chunks, [&](std::size_t c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo < hi) body(lo, hi);
  });
}

}  // namespace netsel::util
