// Tests for the performance models and the node-count advisor (§3.4
// "Variable number of execution nodes"): predictions are validated against
// the simulator, and the advisor must pick sensible node counts for strong-
// scaling workloads.

#include <gtest/gtest.h>

#include "api/advisor.hpp"
#include "appsim/presets.hpp"
#include "topo/parse.hpp"
#include "topo/generators.hpp"

namespace netsel::api {
namespace {

std::vector<topo::NodeId> first_hosts(const sim::NetworkSim& net, int m) {
  auto cn = net.topology().compute_nodes();
  cn.resize(static_cast<std::size_t>(m));
  return cn;
}

double simulate_ls(const appsim::LooselySyncConfig& cfg) {
  sim::NetworkSim net(topo::star(cfg.num_nodes));
  appsim::LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, cfg.num_nodes));
  net.sim().run();
  return app.elapsed();
}

double simulate_ms(const appsim::MasterSlaveConfig& cfg) {
  sim::NetworkSim net(topo::star(cfg.num_nodes));
  appsim::MasterSlaveApp app(net, cfg);
  app.start(first_hosts(net, cfg.num_nodes));
  net.sim().run();
  return app.elapsed();
}

TEST(PredictLooselySync, MatchesSimulatorOnIdleStar) {
  for (const auto& cfg : {appsim::fft1k(), appsim::airshed()}) {
    topo::TopologyGraph g = topo::star(cfg.num_nodes);
    remos::NetworkSnapshot snap(g);
    auto nodes = g.compute_nodes();
    double predicted = predict_loosely_synchronous(cfg, snap, nodes);
    double simulated = simulate_ls(cfg);
    EXPECT_NEAR(predicted, simulated, simulated * 0.10)
        << "app with " << cfg.num_nodes << " nodes";
  }
}

TEST(PredictLooselySync, LoadScalesComputePart) {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 10;
  cfg.phases = {appsim::PhaseSpec{2.0, 0.0, appsim::CommPattern::None}};
  topo::TopologyGraph g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  auto nodes = g.compute_nodes();
  EXPECT_DOUBLE_EQ(predict_loosely_synchronous(cfg, snap, nodes), 20.0);
  snap.set_cpu(nodes[2], 0.5);  // one slow node gates every iteration
  EXPECT_DOUBLE_EQ(predict_loosely_synchronous(cfg, snap, nodes), 40.0);
}

TEST(PredictLooselySync, CongestionScalesCommPart) {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 4;
  cfg.phases = {appsim::PhaseSpec{0.0, 12.5e6, appsim::CommPattern::Ring}};
  topo::TopologyGraph g = topo::star(2);
  remos::NetworkSnapshot snap(g);
  auto nodes = g.compute_nodes();
  EXPECT_DOUBLE_EQ(predict_loosely_synchronous(cfg, snap, nodes), 4.0);
  snap.set_bw(0, 50e6);
  EXPECT_DOUBLE_EQ(predict_loosely_synchronous(cfg, snap, nodes), 8.0);
}

TEST(PredictMasterSlave, MatchesSimulatorOnIdleStar) {
  auto cfg = appsim::mri();
  topo::TopologyGraph g = topo::star(cfg.num_nodes);
  remos::NetworkSnapshot snap(g);
  auto nodes = g.compute_nodes();
  double predicted = predict_master_slave(cfg, snap, nodes);
  double simulated = simulate_ms(cfg);
  EXPECT_NEAR(predicted, simulated, simulated * 0.15);
}

TEST(PredictMasterSlave, SlowSlaveReducesThroughputGracefully) {
  appsim::MasterSlaveConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_tasks = 120;
  cfg.task_work = 2.0;
  cfg.input_bytes = 0.0;
  cfg.output_bytes = 0.0;
  topo::TopologyGraph g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  auto nodes = g.compute_nodes();
  double idle = predict_master_slave(cfg, snap, nodes);
  EXPECT_NEAR(idle, 120.0 / (3.0 / 2.0), 1e-9);  // 80 s
  snap.set_cpu(nodes[3], 0.5);  // one slave at half speed
  double degraded = predict_master_slave(cfg, snap, nodes);
  // Throughput 0.5+0.5+0.25 = 1.25 tasks/s -> 96 s: adapts, not 2x.
  EXPECT_NEAR(degraded, 96.0, 1e-9);
}

TEST(Predict, Rejections) {
  auto cfg = appsim::fft1k();
  topo::TopologyGraph g = topo::star(3);
  remos::NetworkSnapshot snap(g);
  EXPECT_THROW(predict_loosely_synchronous(cfg, snap, g.compute_nodes()),
               std::invalid_argument);
  auto ms = appsim::mri();
  EXPECT_THROW(predict_master_slave(ms, snap, g.compute_nodes()),
               std::invalid_argument);
}

TEST(ChooseNodeCount, StrongScalingSweetSpot) {
  // Strong scaling: total work fixed at 96 cpu-seconds per iteration, but
  // the all-to-all transpose volume per node is fixed, so communication
  // grows with m. Prediction should find an interior optimum (neither the
  // minimum nor maximum m).
  topo::TopologyGraph g = topo::star(16);
  remos::NetworkSnapshot snap(g);
  auto config_for_m = [](int m) {
    appsim::LooselySyncConfig cfg;
    cfg.num_nodes = m;
    cfg.iterations = 10;
    cfg.phases = {
        appsim::PhaseSpec{96.0 / m, 16e6, appsim::CommPattern::AllToAll}};
    return cfg;
  };
  NodeCountOptions opt;
  opt.min_nodes = 2;
  opt.max_nodes = 16;
  auto choice = choose_node_count(
      std::function<appsim::LooselySyncConfig(int)>(config_for_m), snap, opt);
  ASSERT_TRUE(choice.feasible);
  EXPECT_GT(choice.num_nodes, 2);
  EXPECT_LT(choice.num_nodes, 16);
  EXPECT_EQ(choice.predictions.size(), 15u);
  EXPECT_EQ(static_cast<int>(choice.nodes.size()), choice.num_nodes);
  // The chosen prediction is the minimum of the sweep.
  for (double p : choice.predictions)
    EXPECT_LE(choice.predicted_seconds, p + 1e-9);
}

TEST(ChooseNodeCount, AdvisorAvoidsLoadedNodesViaSelection) {
  // With half the hosts heavily loaded, the advisor should both cap m at
  // the number of healthy nodes and place on them.
  topo::TopologyGraph g = topo::star(8);
  remos::NetworkSnapshot snap(g);
  for (int i = 4; i < 8; ++i)
    snap.set_loadavg(g.compute_nodes()[static_cast<std::size_t>(i)], 9.0);
  auto config_for_m = [](int m) {
    appsim::LooselySyncConfig cfg;
    cfg.num_nodes = m;
    cfg.iterations = 1;
    cfg.phases = {appsim::PhaseSpec{100.0 / m, 0.0, appsim::CommPattern::None}};
    return cfg;
  };
  NodeCountOptions opt;
  opt.min_nodes = 2;
  opt.max_nodes = 8;
  auto choice = choose_node_count(
      std::function<appsim::LooselySyncConfig(int)>(config_for_m), snap, opt);
  ASSERT_TRUE(choice.feasible);
  // 4 idle nodes at 100/m vs including a 0.1-cpu node: for m=5 the gated
  // time is (100/5)/0.1 = 200 vs m=4 at 25. Must pick m = 4.
  EXPECT_EQ(choice.num_nodes, 4);
  for (auto n : choice.nodes) EXPECT_DOUBLE_EQ(snap.cpu(n), 1.0);
}

TEST(ChooseNodeCount, MasterSlaveWidthChoice) {
  // Farm width: more slaves help until the master's access link saturates
  // with input traffic (the model's 1/slaves share captures this).
  topo::TopologyGraph g = topo::star(12);
  remos::NetworkSnapshot snap(g);
  auto config_for_m = [](int m) {
    appsim::MasterSlaveConfig cfg;
    cfg.num_nodes = m;
    cfg.num_tasks = 200;
    cfg.task_work = 1.0;
    cfg.input_bytes = 4e6;  // 0.32 s at full rate: io-heavy farm
    cfg.output_bytes = 0.0;
    return cfg;
  };
  NodeCountOptions opt;
  opt.min_nodes = 2;
  opt.max_nodes = 12;
  auto choice = choose_node_count(
      std::function<appsim::MasterSlaveConfig(int)>(config_for_m), snap, opt);
  ASSERT_TRUE(choice.feasible);
  EXPECT_GT(choice.num_nodes, 2);
  // Predictions should not improve meaningfully past the io saturation
  // point: the best prediction beats the widest farm by < 5% or the widest
  // farm is simply not the chosen one.
  EXPECT_LE(choice.predicted_seconds, choice.predictions.back() + 1e-9);
}

/// Three-switch WAN: swA's 4 hosts are moderately loaded; swB and swC hold
/// 2 idle hosts each. The pairwise-availability metric loves the spread
/// idle set {b*, c*} (every link idle, cpu 1.0) but an all-to-all's own
/// concurrent messages pile 4 deep on the trunks — the §3.4 "simultaneous
/// traffic streams" blind spot.
struct ContentionFixture {
  topo::TopologyGraph g;
  remos::NetworkSnapshot snap{[this] {
    auto swA = g.add_network("swA");
    auto swB = g.add_network("swB");
    auto swC = g.add_network("swC");
    g.add_link(swA, swB, 100e6);
    g.add_link(swA, swC, 100e6);
    for (int i = 0; i < 4; ++i)
      g.add_link(swA, g.add_compute("a" + std::to_string(i)), 100e6);
    for (int i = 0; i < 2; ++i)
      g.add_link(swB, g.add_compute("b" + std::to_string(i)), 100e6);
    for (int i = 0; i < 2; ++i)
      g.add_link(swC, g.add_compute("c" + std::to_string(i)), 100e6);
    g.validate();
    return std::cref(g);
  }()};

  ContentionFixture() {
    for (int i = 0; i < 4; ++i)
      snap.set_loadavg(g.find_node("a" + std::to_string(i)).value(), 0.5);
  }

  appsim::LooselySyncConfig app(double work, double bytes) const {
    appsim::LooselySyncConfig cfg;
    cfg.num_nodes = 4;
    cfg.iterations = 20;
    cfg.phases = {appsim::PhaseSpec{work, bytes, appsim::CommPattern::AllToAll}};
    return cfg;
  }

  /// Run the app on a fresh copy of the topology. The network is idle in
  /// this run (fractional load averages are not expressible as discrete
  /// competing jobs), which isolates exactly the self-contention effect
  /// the comm-heavy comparison cares about.
  double simulate(const appsim::LooselySyncConfig& cfg,
                  const std::vector<std::string>& names) const {
    sim::NetworkSim net(topo::parse_topology(topo::format_topology(g)));
    appsim::LooselySynchronousApp application(net, cfg);
    std::vector<topo::NodeId> nodes;
    for (const auto& n : names)
      nodes.push_back(net.topology().find_node(n).value());
    application.start(nodes);
    while (!application.finished() && net.sim().step()) {
    }
    return application.elapsed();
  }
};

TEST(PlaceWithModel, OvercomesSimultaneousStreamsBlindSpot) {
  ContentionFixture fx;
  // Comm-heavy: 12.5 MB per pair; the spread set pays 4 concurrent
  // messages per trunk direction (4 s/phase) vs 3 on an access link for
  // the swA cluster (3 s/phase).
  auto cfg = fx.app(0.5, 12.5e6);
  auto choice = api::place_with_model(cfg, fx.snap);
  ASSERT_TRUE(choice.feasible);
  for (auto n : choice.nodes)
    EXPECT_EQ(fx.g.node(n).name[0], 'a')
        << "must cluster under swA (winner came from '" << choice.source
        << "')";
  // The pairwise-availability metric picks the spread idle set instead.
  select::SelectionOptions sopt;
  sopt.num_nodes = 4;
  auto balanced = select::select_balanced(fx.snap, sopt);
  ASSERT_TRUE(balanced.feasible);
  bool spread = false;
  for (auto n : balanced.nodes)
    if (fx.g.node(n).name[0] != 'a') spread = true;
  EXPECT_TRUE(spread) << "availability metric should be misled here";
  // And the model's ranking is confirmed by simulation (idle-network
  // comparison isolates the self-contention effect).
  double t_cluster =
      fx.simulate(cfg, {"a0", "a1", "a2", "a3"});
  double t_spread = fx.simulate(cfg, {"b0", "b1", "c0", "c1"});
  EXPECT_LT(t_cluster, t_spread);
}

TEST(PlaceWithModel, FallsBackToSpreadWhenCommIsLight) {
  ContentionFixture fx;
  // Tiny messages: compute dominates, the idle spread set wins.
  auto cfg = fx.app(0.5, 1e5);
  auto choice = api::place_with_model(cfg, fx.snap);
  ASSERT_TRUE(choice.feasible);
  for (auto n : choice.nodes)
    EXPECT_NE(fx.g.node(n).name[0], 'a') << "idle spread nodes must win";
  EXPECT_LT(choice.predicted_seconds, 15.0);
}

TEST(PlaceWithModel, InfeasibleWhenTooFewNodes) {
  ContentionFixture fx;
  auto cfg = fx.app(1.0, 1e5);
  cfg.num_nodes = 99;
  auto choice = api::place_with_model(cfg, fx.snap);
  EXPECT_FALSE(choice.feasible);
}

TEST(ChooseNodeCount, Rejections) {
  topo::TopologyGraph g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  NodeCountOptions opt;
  opt.min_nodes = 5;
  opt.max_nodes = 3;
  auto cfg_fn = [](int m) {
    appsim::LooselySyncConfig cfg;
    cfg.num_nodes = m;
    cfg.iterations = 1;
    cfg.phases = {appsim::PhaseSpec{1.0, 0.0, appsim::CommPattern::None}};
    return cfg;
  };
  EXPECT_THROW(choose_node_count(
                   std::function<appsim::LooselySyncConfig(int)>(cfg_fn), snap,
                   opt),
               std::invalid_argument);
  // A config function that lies about m.
  opt.min_nodes = 2;
  opt.max_nodes = 3;
  auto liar = [](int) {
    appsim::LooselySyncConfig cfg;
    cfg.num_nodes = 99;
    cfg.iterations = 1;
    cfg.phases = {appsim::PhaseSpec{1.0, 0.0, appsim::CommPattern::None}};
    return cfg;
  };
  EXPECT_THROW(choose_node_count(
                   std::function<appsim::LooselySyncConfig(int)>(liar), snap,
                   opt),
               std::invalid_argument);
  // Infeasible range (not enough nodes) is reported, not thrown.
  opt.min_nodes = 6;
  opt.max_nodes = 7;
  auto choice = choose_node_count(
      std::function<appsim::LooselySyncConfig(int)>(cfg_fn), snap, opt);
  EXPECT_FALSE(choice.feasible);
}

}  // namespace
}  // namespace netsel::api
