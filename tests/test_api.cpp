#include <gtest/gtest.h>

#include <set>

#include "api/service.hpp"
#include "obs/metrics.hpp"
#include "select/context.hpp"
#include "topo/generators.hpp"

namespace netsel::api {
namespace {

struct ApiFixture : ::testing::Test {
  sim::NetworkSim net{topo::testbed()};
  remos::Remos remos{net};

  void warm() {
    remos.start();
    net.sim().run_until(net.sim().now() + 4.0);
  }
};

TEST_F(ApiFixture, SpmdSpecValidatesAndCounts) {
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.total_nodes(), 4);
  EXPECT_EQ(spec.groups.size(), 1u);
}

TEST_F(ApiFixture, SpecValidationRejections) {
  AppSpec spec;
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no groups
  spec.groups.push_back(NodeGroup{"g", 0, {}, {}, 0});
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // zero count
  spec.groups[0].count = 2;
  spec.cpu_priority = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.cpu_priority = 1.0;
  spec.min_bw_bps = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST_F(ApiFixture, PlacesSpmdGroup) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  ASSERT_EQ(placement.group_nodes.size(), 1u);
  EXPECT_EQ(placement.group_nodes[0].size(), 4u);
  EXPECT_EQ(placement.flat().size(), 4u);
}

TEST_F(ApiFixture, AvoidsLoadedNodes) {
  // Load m-1..m-4 heavily; the placement must not use them.
  for (int i = 1; i <= 4; ++i) {
    auto n = net.topology().find_node("m-" + std::to_string(i)).value();
    net.host(n).submit(1e9, sim::kBackgroundOwner);
    net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(600.0);
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  for (auto n : placement.flat()) {
    for (int i = 1; i <= 4; ++i)
      EXPECT_NE(net.topology().node(n).name, "m-" + std::to_string(i));
  }
}

TEST_F(ApiFixture, GroupTagConstraintsHonoured) {
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.name = "tagged";
  NodeGroup workers;
  workers.name = "workers";
  workers.count = 3;
  workers.required_tags = {"alpha"};  // all testbed hosts carry this
  spec.groups.push_back(workers);
  EXPECT_TRUE(svc.place(spec).feasible);
  spec.groups[0].required_tags = {"sparc"};  // nobody has it
  auto placement = svc.place(spec);
  EXPECT_FALSE(placement.feasible);
  EXPECT_NE(placement.note.find("workers"), std::string::npos);
}

TEST_F(ApiFixture, PinnedHostGroup) {
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  NodeGroup server;
  server.name = "server";
  server.count = 1;
  server.allowed_hosts = {"m-9"};
  server.placement_priority = 10;
  NodeGroup clients;
  clients.name = "clients";
  clients.count = 3;
  spec.groups = {server, clients};
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  ASSERT_EQ(placement.group_nodes[0].size(), 1u);
  EXPECT_EQ(net.topology().node(placement.group_nodes[0][0]).name, "m-9");
  // The clients must not reuse the server node.
  for (auto n : placement.group_nodes[1])
    EXPECT_NE(net.topology().node(n).name, "m-9");
}

TEST_F(ApiFixture, GroupsDoNotOverlap) {
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.groups = {NodeGroup{"a", 6, {}, {}, 0}, NodeGroup{"b", 6, {}, {}, 0},
                 NodeGroup{"c", 6, {}, {}, 0}};
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  std::set<topo::NodeId> seen;
  for (auto n : placement.flat()) EXPECT_TRUE(seen.insert(n).second);
  EXPECT_EQ(seen.size(), 18u);
  // A fourth group cannot fit.
  spec.groups.push_back(NodeGroup{"d", 1, {}, {}, 0});
  EXPECT_FALSE(svc.place(spec).feasible);
}

TEST_F(ApiFixture, HigherPriorityGroupPlacedFirst) {
  // Load every node except m-5 lightly; the high-priority group should get
  // the best node even though it is declared second.
  for (auto n : net.topology().compute_nodes()) {
    if (net.topology().node(n).name != "m-5")
      net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(600.0);
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.groups = {NodeGroup{"clients", 3, {}, {}, 0},
                 NodeGroup{"server", 1, {}, {}, 5}};
  ServiceOptions opt;
  opt.criterion = select::Criterion::MaxCompute;
  auto placement = svc.place(spec, opt);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(net.topology().node(placement.group_nodes[1][0]).name, "m-5");
}

TEST_F(ApiFixture, CriterionOverrideAndConvenienceSelect) {
  warm();
  NodeSelectionService svc(remos);
  auto r = svc.select(4, select::Criterion::MaxBandwidth);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes.size(), 4u);
  EXPECT_EQ(default_criterion(AppPattern::MasterSlave),
            select::Criterion::Balanced);
}

TEST_F(ApiFixture, PlacementCarriesExplainDataAndReportRendersIt) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);

  // Structured explain fields on the Placement itself.
  EXPECT_EQ(placement.app, "fft");
  EXPECT_EQ(placement.criterion, "balanced");
  EXPECT_FALSE(placement.degradation_reason.empty());
  ASSERT_EQ(placement.groups.size(), 1u);
  const auto& info = placement.groups[0];
  EXPECT_EQ(info.nodes, placement.group_nodes[0]);
  EXPECT_GE(info.candidates, info.nodes.size());
  EXPECT_GT(info.min_cpu, 0.0);
  EXPECT_GT(info.min_bw_fraction, 0.0);
  EXPECT_GT(info.min_pair_bw, 0.0);

  // The text rendering names the app, the chosen nodes, and marks the
  // binding cpu-vs-bandwidth term.
  auto report = explain_report(placement, remos.topology());
  EXPECT_NE(report.find("fft"), std::string::npos);
  EXPECT_NE(report.find("[binding]"), std::string::npos);
  EXPECT_NE(report.find(placement.degradation_reason), std::string::npos);
  for (auto n : placement.group_nodes[0]) {
    EXPECT_NE(report.find(remos.topology().node(n).name), std::string::npos)
        << report;
  }
}

TEST_F(ApiFixture, InfeasiblePlacementExplainsItself) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("huge", 500, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_FALSE(placement.feasible);
  EXPECT_EQ(placement.app, "huge");
  auto report = explain_report(placement, remos.topology());
  EXPECT_NE(report.find("infeasible"), std::string::npos) << report;
}

TEST_F(ApiFixture, ClientServerInfeasibleNotesBothGroups) {
  // The pattern-aware client-server path decides both groups jointly; an
  // infeasible outcome must explain itself on *both* group records and in
  // the top-level note, like the generic multi-group path does.
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.name = "cs";
  spec.pattern = AppPattern::ClientServer;
  NodeGroup server;
  server.name = "backend";
  server.count = 1;
  server.allowed_hosts = {"no-such-host"};  // empty server candidate set
  server.placement_priority = 5;
  NodeGroup client;
  client.name = "frontend";
  client.count = 3;
  spec.groups = {server, client};

  obs::set_enabled(true);
  const std::uint64_t before =
      obs::Registry::global().counter("api.placements_infeasible").value();
  auto placement = svc.place(spec);
  const std::uint64_t after =
      obs::Registry::global().counter("api.placements_infeasible").value();
  obs::set_enabled(false);

  ASSERT_FALSE(placement.feasible);
  EXPECT_EQ(after, before + 1);
  ASSERT_EQ(placement.groups.size(), 2u);
  EXPECT_FALSE(placement.groups[0].note.empty());
  EXPECT_EQ(placement.groups[0].note, placement.groups[1].note);
  EXPECT_NE(placement.note.find("'backend'"), std::string::npos)
      << placement.note;
  EXPECT_NE(placement.note.find("'frontend'"), std::string::npos)
      << placement.note;
  EXPECT_NE(placement.note.find(placement.groups[0].note), std::string::npos)
      << placement.note;
}

TEST_F(ApiFixture, MultiGroupPartialFailureKeepsEarlierGroupAndExplains) {
  // Two groups by descending priority: the first places, the second cannot.
  // The placement is infeasible overall but the successful group's nodes,
  // the failed group's candidate count (testbed minus the taken nodes) and
  // both notes must survive on the record.
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.name = "partial";
  spec.groups = {NodeGroup{"small", 4, {}, {}, 10},
                 NodeGroup{"huge", 500, {}, {}, 0}};

  obs::set_enabled(true);
  const std::uint64_t before =
      obs::Registry::global().counter("api.placements_infeasible").value();
  auto placement = svc.place(spec);
  const std::uint64_t after =
      obs::Registry::global().counter("api.placements_infeasible").value();
  obs::set_enabled(false);

  ASSERT_FALSE(placement.feasible);
  EXPECT_EQ(after, before + 1);
  ASSERT_EQ(placement.groups.size(), 2u);
  EXPECT_EQ(placement.groups[0].nodes.size(), 4u);
  EXPECT_EQ(placement.group_nodes[0].size(), 4u);
  const std::size_t total = net.topology().compute_nodes().size();
  EXPECT_EQ(placement.groups[0].candidates, total);
  EXPECT_EQ(placement.groups[1].candidates, total - 4);
  EXPECT_TRUE(placement.groups[1].nodes.empty());
  EXPECT_FALSE(placement.groups[1].note.empty());
  EXPECT_EQ(placement.note.rfind("group 'huge': ", 0), 0u) << placement.note;
}

TEST_F(ApiFixture, SelectHonoursServiceOptionsAndContextPath) {
  warm();
  NodeSelectionService svc(remos);

  // select() runs the same SelectionContext path as place()/reselect():
  // bit-identical to a hand-built context over the ladder's snapshot.
  auto via_service = svc.select(4, select::Criterion::Balanced);
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  auto snap = svc.degraded_snapshot({}, {}, level, quality);
  select::SelectionContext ctx(snap);
  select::SelectionOptions sel;
  sel.num_nodes = 4;
  auto direct = select::select_nodes(select::Criterion::Balanced, ctx, sel);
  ASSERT_TRUE(via_service.feasible);
  EXPECT_EQ(via_service.nodes, direct.nodes);
  EXPECT_EQ(via_service.objective, direct.objective);

  // The QueryOptions back-compat overload is the same query under the
  // default policy.
  auto compat = svc.select(4, select::Criterion::Balanced,
                           remos::QueryOptions{});
  EXPECT_EQ(compat.nodes, via_service.nodes);

  // And the caller's degradation policy is honoured, not silently replaced
  // with the default: a threshold above full coverage forces the Smoothed
  // rung, annotated in the note.
  ServiceOptions opt;
  opt.degradation.smoothed_below = 1.1;
  auto degraded = svc.select(4, select::Criterion::Balanced, opt);
  ASSERT_TRUE(degraded.feasible);
  EXPECT_NE(degraded.note.find("degraded: smoothed"), std::string::npos)
      << degraded.note;
}

TEST_F(ApiFixture, SpecLevelRequirementsPropagate) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("strict", 4, AppPattern::LooselySynchronous);
  spec.min_cpu_fraction = 0.9;  // idle testbed: fine
  EXPECT_TRUE(svc.place(spec).feasible);
  // Load everything; now nothing satisfies 0.9.
  for (auto n : net.topology().compute_nodes()) {
    net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(1200.0);
  remos.monitor().poll_once();
  EXPECT_FALSE(svc.place(spec).feasible);
}

}  // namespace
}  // namespace netsel::api
