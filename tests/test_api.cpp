#include <gtest/gtest.h>

#include <set>

#include "api/service.hpp"
#include "topo/generators.hpp"

namespace netsel::api {
namespace {

struct ApiFixture : ::testing::Test {
  sim::NetworkSim net{topo::testbed()};
  remos::Remos remos{net};

  void warm() {
    remos.start();
    net.sim().run_until(net.sim().now() + 4.0);
  }
};

TEST_F(ApiFixture, SpmdSpecValidatesAndCounts) {
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.total_nodes(), 4);
  EXPECT_EQ(spec.groups.size(), 1u);
}

TEST_F(ApiFixture, SpecValidationRejections) {
  AppSpec spec;
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no groups
  spec.groups.push_back(NodeGroup{"g", 0, {}, {}, 0});
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // zero count
  spec.groups[0].count = 2;
  spec.cpu_priority = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.cpu_priority = 1.0;
  spec.min_bw_bps = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST_F(ApiFixture, PlacesSpmdGroup) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  ASSERT_EQ(placement.group_nodes.size(), 1u);
  EXPECT_EQ(placement.group_nodes[0].size(), 4u);
  EXPECT_EQ(placement.flat().size(), 4u);
}

TEST_F(ApiFixture, AvoidsLoadedNodes) {
  // Load m-1..m-4 heavily; the placement must not use them.
  for (int i = 1; i <= 4; ++i) {
    auto n = net.topology().find_node("m-" + std::to_string(i)).value();
    net.host(n).submit(1e9, sim::kBackgroundOwner);
    net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(600.0);
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  for (auto n : placement.flat()) {
    for (int i = 1; i <= 4; ++i)
      EXPECT_NE(net.topology().node(n).name, "m-" + std::to_string(i));
  }
}

TEST_F(ApiFixture, GroupTagConstraintsHonoured) {
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.name = "tagged";
  NodeGroup workers;
  workers.name = "workers";
  workers.count = 3;
  workers.required_tags = {"alpha"};  // all testbed hosts carry this
  spec.groups.push_back(workers);
  EXPECT_TRUE(svc.place(spec).feasible);
  spec.groups[0].required_tags = {"sparc"};  // nobody has it
  auto placement = svc.place(spec);
  EXPECT_FALSE(placement.feasible);
  EXPECT_NE(placement.note.find("workers"), std::string::npos);
}

TEST_F(ApiFixture, PinnedHostGroup) {
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  NodeGroup server;
  server.name = "server";
  server.count = 1;
  server.allowed_hosts = {"m-9"};
  server.placement_priority = 10;
  NodeGroup clients;
  clients.name = "clients";
  clients.count = 3;
  spec.groups = {server, clients};
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  ASSERT_EQ(placement.group_nodes[0].size(), 1u);
  EXPECT_EQ(net.topology().node(placement.group_nodes[0][0]).name, "m-9");
  // The clients must not reuse the server node.
  for (auto n : placement.group_nodes[1])
    EXPECT_NE(net.topology().node(n).name, "m-9");
}

TEST_F(ApiFixture, GroupsDoNotOverlap) {
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.groups = {NodeGroup{"a", 6, {}, {}, 0}, NodeGroup{"b", 6, {}, {}, 0},
                 NodeGroup{"c", 6, {}, {}, 0}};
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  std::set<topo::NodeId> seen;
  for (auto n : placement.flat()) EXPECT_TRUE(seen.insert(n).second);
  EXPECT_EQ(seen.size(), 18u);
  // A fourth group cannot fit.
  spec.groups.push_back(NodeGroup{"d", 1, {}, {}, 0});
  EXPECT_FALSE(svc.place(spec).feasible);
}

TEST_F(ApiFixture, HigherPriorityGroupPlacedFirst) {
  // Load every node except m-5 lightly; the high-priority group should get
  // the best node even though it is declared second.
  for (auto n : net.topology().compute_nodes()) {
    if (net.topology().node(n).name != "m-5")
      net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(600.0);
  warm();
  NodeSelectionService svc(remos);
  AppSpec spec;
  spec.groups = {NodeGroup{"clients", 3, {}, {}, 0},
                 NodeGroup{"server", 1, {}, {}, 5}};
  ServiceOptions opt;
  opt.criterion = select::Criterion::MaxCompute;
  auto placement = svc.place(spec, opt);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(net.topology().node(placement.group_nodes[1][0]).name, "m-5");
}

TEST_F(ApiFixture, CriterionOverrideAndConvenienceSelect) {
  warm();
  NodeSelectionService svc(remos);
  auto r = svc.select(4, select::Criterion::MaxBandwidth);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes.size(), 4u);
  EXPECT_EQ(default_criterion(AppPattern::MasterSlave),
            select::Criterion::Balanced);
}

TEST_F(ApiFixture, PlacementCarriesExplainDataAndReportRendersIt) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("fft", 4, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);

  // Structured explain fields on the Placement itself.
  EXPECT_EQ(placement.app, "fft");
  EXPECT_EQ(placement.criterion, "balanced");
  EXPECT_FALSE(placement.degradation_reason.empty());
  ASSERT_EQ(placement.groups.size(), 1u);
  const auto& info = placement.groups[0];
  EXPECT_EQ(info.nodes, placement.group_nodes[0]);
  EXPECT_GE(info.candidates, info.nodes.size());
  EXPECT_GT(info.min_cpu, 0.0);
  EXPECT_GT(info.min_bw_fraction, 0.0);
  EXPECT_GT(info.min_pair_bw, 0.0);

  // The text rendering names the app, the chosen nodes, and marks the
  // binding cpu-vs-bandwidth term.
  auto report = explain_report(placement, remos.topology());
  EXPECT_NE(report.find("fft"), std::string::npos);
  EXPECT_NE(report.find("[binding]"), std::string::npos);
  EXPECT_NE(report.find(placement.degradation_reason), std::string::npos);
  for (auto n : placement.group_nodes[0]) {
    EXPECT_NE(report.find(remos.topology().node(n).name), std::string::npos)
        << report;
  }
}

TEST_F(ApiFixture, InfeasiblePlacementExplainsItself) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("huge", 500, AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_FALSE(placement.feasible);
  EXPECT_EQ(placement.app, "huge");
  auto report = explain_report(placement, remos.topology());
  EXPECT_NE(report.find("infeasible"), std::string::npos) << report;
}

TEST_F(ApiFixture, SpecLevelRequirementsPropagate) {
  warm();
  NodeSelectionService svc(remos);
  auto spec = AppSpec::spmd("strict", 4, AppPattern::LooselySynchronous);
  spec.min_cpu_fraction = 0.9;  // idle testbed: fine
  EXPECT_TRUE(svc.place(spec).feasible);
  // Load everything; now nothing satisfies 0.9.
  for (auto n : net.topology().compute_nodes()) {
    net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(1200.0);
  remos.monitor().poll_once();
  EXPECT_FALSE(svc.place(spec).feasible);
}

}  // namespace
}  // namespace netsel::api
