#include <gtest/gtest.h>

#include "appsim/loosely_synchronous.hpp"
#include "appsim/master_slave.hpp"
#include "appsim/presets.hpp"
#include "topo/generators.hpp"

namespace netsel::appsim {
namespace {

std::vector<topo::NodeId> first_hosts(const sim::NetworkSim& net, int m) {
  auto cn = net.topology().compute_nodes();
  cn.resize(static_cast<std::size_t>(m));
  return cn;
}

TEST(LooselySync, ComputeOnlyClosedForm) {
  sim::NetworkSim net(topo::star(4));
  LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 10;
  cfg.phases = {PhaseSpec{2.0, 0.0, CommPattern::None}};
  LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, 4));
  net.sim().run();
  ASSERT_TRUE(app.finished());
  EXPECT_DOUBLE_EQ(app.elapsed(), 20.0);
  EXPECT_EQ(app.iterations_completed(), 10);
}

TEST(LooselySync, CommOnlyAllToAllClosedForm) {
  // 4 nodes on one switch, 2.5 MB per pair: 3 flows share each access-link
  // direction at ~33.3 Mbps -> 0.6 s per iteration.
  sim::NetworkSim net(topo::star(4));
  LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 5;
  cfg.phases = {PhaseSpec{0.0, 2.5e6, CommPattern::AllToAll}};
  LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, 4));
  net.sim().run();
  ASSERT_TRUE(app.finished());
  EXPECT_NEAR(app.elapsed(), 5.0 * 2.5e6 * 8.0 * 3.0 / 100e6, 1e-6);
}

TEST(LooselySync, RingUsesFullLinks) {
  // Ring: each host sends one and receives one message: full 100 Mbps.
  sim::NetworkSim net(topo::star(5));
  LooselySyncConfig cfg;
  cfg.num_nodes = 5;
  cfg.iterations = 4;
  cfg.phases = {PhaseSpec{0.0, 12.5e6, CommPattern::Ring}};
  LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, 5));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 4.0 * 1.0, 1e-6);
}

TEST(LooselySync, GatherSharesSinkDownlink) {
  // 4 senders into node 0: the sink's downlink is the bottleneck.
  sim::NetworkSim net(topo::star(5));
  LooselySyncConfig cfg;
  cfg.num_nodes = 5;
  cfg.iterations = 1;
  cfg.phases = {PhaseSpec{0.0, 12.5e6, CommPattern::Gather}};
  LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, 5));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 4.0, 1e-6);  // 4 * 12.5 MB over 100 Mbps
}

TEST(LooselySync, BroadcastSharesSourceUplink) {
  sim::NetworkSim net(topo::star(5));
  LooselySyncConfig cfg;
  cfg.num_nodes = 5;
  cfg.iterations = 1;
  cfg.phases = {PhaseSpec{0.0, 12.5e6, CommPattern::Broadcast}};
  LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, 5));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 4.0, 1e-6);
}

TEST(LooselySync, SlowestNodeGatesEveryIteration) {
  // One loaded node doubles the compute phase for everyone (barrier).
  sim::NetworkSim net(topo::star(4));
  auto hosts = first_hosts(net, 4);
  net.host(hosts[2]).submit(1e9, sim::kBackgroundOwner);  // permanent load
  LooselySyncConfig cfg;
  cfg.num_nodes = 4;
  cfg.iterations = 8;
  cfg.phases = {PhaseSpec{1.0, 0.0, CommPattern::None}};
  LooselySynchronousApp app(net, cfg);
  app.start(hosts);
  net.sim().run_until(100.0);
  ASSERT_TRUE(app.finished());
  EXPECT_DOUBLE_EQ(app.elapsed(), 16.0);  // 2x on the shared node
}

TEST(LooselySync, MultiPhaseIterationOrder) {
  sim::NetworkSim net(topo::star(2));
  LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 3;
  cfg.phases = {PhaseSpec{1.0, 0.0, CommPattern::None},
                PhaseSpec{0.0, 12.5e6, CommPattern::Ring},
                PhaseSpec{0.5, 0.0, CommPattern::None}};
  LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, 2));
  net.sim().run();
  // Per iteration: 1.0 + 1.0 (12.5 MB at 100 Mbps, both directions in
  // parallel) + 0.5 = 2.5.
  EXPECT_NEAR(app.elapsed(), 7.5, 1e-6);
}

TEST(LooselySync, Compute_And_Comm_PhaseCombined) {
  sim::NetworkSim net(topo::star(2));
  LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 2;
  cfg.phases = {PhaseSpec{1.0, 12.5e6, CommPattern::Ring}};
  LooselySynchronousApp app(net, cfg);
  app.start(first_hosts(net, 2));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 2.0 * (1.0 + 1.0), 1e-6);
}

TEST(LooselySync, FftPresetUnloadedReference) {
  sim::NetworkSim net(topo::star(4));
  LooselySynchronousApp app(net, fft1k());
  app.start(first_hosts(net, 4));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 48.0, 0.5);
}

TEST(LooselySync, AirshedPresetUnloadedReference) {
  sim::NetworkSim net(topo::star(5));
  LooselySynchronousApp app(net, airshed());
  app.start(first_hosts(net, 5));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 150.0, 5.0);
}

TEST(LooselySync, Validation) {
  sim::NetworkSim net(topo::star(4));
  LooselySyncConfig cfg;
  cfg.num_nodes = 0;
  cfg.iterations = 1;
  cfg.phases = {PhaseSpec{1.0, 0.0, CommPattern::None}};
  EXPECT_THROW(LooselySynchronousApp(net, cfg), std::invalid_argument);
  cfg.num_nodes = 2;
  cfg.iterations = 0;
  EXPECT_THROW(LooselySynchronousApp(net, cfg), std::invalid_argument);
  cfg.iterations = 1;
  cfg.phases.clear();
  EXPECT_THROW(LooselySynchronousApp(net, cfg), std::invalid_argument);
  cfg.phases = {PhaseSpec{-1.0, 0.0, CommPattern::None}};
  EXPECT_THROW(LooselySynchronousApp(net, cfg), std::invalid_argument);
  cfg.num_nodes = 1;
  cfg.phases = {PhaseSpec{1.0, 1e6, CommPattern::AllToAll}};
  EXPECT_THROW(LooselySynchronousApp(net, cfg), std::invalid_argument);
}

TEST(LooselySync, PlacementSizeChecked) {
  sim::NetworkSim net(topo::star(4));
  LooselySyncConfig cfg;
  cfg.num_nodes = 3;
  cfg.iterations = 1;
  cfg.phases = {PhaseSpec{1.0, 0.0, CommPattern::None}};
  LooselySynchronousApp app(net, cfg);
  EXPECT_THROW(app.start(first_hosts(net, 2)), std::invalid_argument);
  EXPECT_THROW(app.elapsed(), std::logic_error);
}

TEST(MasterSlave, ClosedFormOnIdleFarm) {
  // 12 tasks, 3 slaves, 2 cpu-s each, no transfers: 4 rounds of 2 s.
  sim::NetworkSim net(topo::star(4));
  MasterSlaveConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_tasks = 12;
  cfg.task_work = 2.0;
  cfg.input_bytes = 0.0;
  cfg.output_bytes = 0.0;
  MasterSlaveApp app(net, cfg);
  app.start(first_hosts(net, 4));
  net.sim().run();
  ASSERT_TRUE(app.finished());
  EXPECT_DOUBLE_EQ(app.elapsed(), 8.0);
  EXPECT_EQ(app.tasks_completed(), 12);
  for (int c : app.per_slave_completed()) EXPECT_EQ(c, 4);
}

TEST(MasterSlave, FarmAdaptsToSlowSlave) {
  // One slave at half speed: the fast slaves absorb the work. This is the
  // paper's explanation for MRI's robustness (§4.3).
  sim::NetworkSim net(topo::star(4));
  auto hosts = first_hosts(net, 4);
  net.host(hosts[3]).submit(1e9, sim::kBackgroundOwner);  // slave 3 loaded
  MasterSlaveConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_tasks = 30;
  cfg.task_work = 1.0;
  cfg.input_bytes = 0.0;
  cfg.output_bytes = 0.0;
  MasterSlaveApp app(net, cfg);
  app.start(hosts);
  net.sim().run_until(500.0);
  ASSERT_TRUE(app.finished());
  const auto& per = app.per_slave_completed();
  EXPECT_GT(per[0], per[2]) << "fast slaves should complete more tasks";
  EXPECT_GT(per[1], per[2]);
  // Total time near the balanced optimum 30/(1+1+0.5) = 12 s rather than
  // the unbalanced 3x10 tasks at the slow slave's pace.
  EXPECT_LT(app.elapsed(), 15.0);
}

TEST(MasterSlave, TransfersSerializeWithComputePerSlave) {
  // window=1: each task is input transfer + compute + output transfer.
  sim::NetworkSim net(topo::star(2));
  MasterSlaveConfig cfg;
  cfg.num_nodes = 2;
  cfg.num_tasks = 4;
  cfg.task_work = 1.0;
  cfg.input_bytes = 12.5e6;   // 1 s
  cfg.output_bytes = 6.25e6;  // 0.5 s
  MasterSlaveApp app(net, cfg);
  app.start(first_hosts(net, 2));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 4.0 * (1.0 + 1.0 + 0.5), 1e-6);
}

TEST(MasterSlave, WindowTwoOverlapsTransfers) {
  // With window=2 the next input streams while the slave computes, hiding
  // transfer latency (compute-bound pipeline).
  sim::NetworkSim net(topo::star(2));
  MasterSlaveConfig cfg;
  cfg.num_nodes = 2;
  cfg.num_tasks = 8;
  cfg.task_work = 2.0;
  cfg.input_bytes = 12.5e6;  // 1 s << 2 s compute
  cfg.output_bytes = 0.0;
  cfg.window = 2;
  MasterSlaveApp app(net, cfg);
  app.start(first_hosts(net, 2));
  net.sim().run();
  // Lower bound 16 s of compute; window=1 would cost 24 s.
  EXPECT_LT(app.elapsed(), 19.0);
  EXPECT_GE(app.elapsed(), 16.0);
}

TEST(MasterSlave, MriPresetUnloadedReference) {
  sim::NetworkSim net(topo::star(4));
  MasterSlaveApp app(net, mri());
  app.start(first_hosts(net, 4));
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 540.0, 25.0);
}

TEST(MasterSlave, Validation) {
  sim::NetworkSim net(topo::star(4));
  MasterSlaveConfig cfg;
  cfg.num_nodes = 1;
  EXPECT_THROW(MasterSlaveApp(net, cfg), std::invalid_argument);
  cfg.num_nodes = 2;
  cfg.num_tasks = 0;
  EXPECT_THROW(MasterSlaveApp(net, cfg), std::invalid_argument);
  cfg.num_tasks = 1;
  cfg.task_work = 0.0;
  EXPECT_THROW(MasterSlaveApp(net, cfg), std::invalid_argument);
  cfg.task_work = 1.0;
  cfg.window = 0;
  EXPECT_THROW(MasterSlaveApp(net, cfg), std::invalid_argument);
}

TEST(ApplicationBase, LifecycleAndOwnership) {
  sim::NetworkSim net(topo::star(4));
  LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 1;
  cfg.phases = {PhaseSpec{1.0, 0.0, CommPattern::None}};
  LooselySynchronousApp a(net, cfg, "a");
  LooselySynchronousApp b(net, cfg, "b");
  EXPECT_NE(a.owner(), b.owner());
  EXPECT_NE(a.owner(), sim::kBackgroundOwner);
  EXPECT_EQ(a.state(), AppState::Idle);
  bool notified = false;
  a.start(first_hosts(net, 2), [&] { notified = true; });
  EXPECT_EQ(a.state(), AppState::Running);
  EXPECT_THROW(a.start(first_hosts(net, 2)), std::logic_error);
  net.sim().run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(a.state(), AppState::Finished);
}

TEST(ApplicationBase, AppJobsAreVisibleInHostLoad) {
  sim::NetworkSim net(topo::star(2));
  LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 1;
  cfg.phases = {PhaseSpec{50.0, 0.0, CommPattern::None}};
  LooselySynchronousApp app(net, cfg);
  auto hosts = first_hosts(net, 2);
  app.start(hosts);
  net.sim().run_until(40.0);
  EXPECT_EQ(net.host(hosts[0]).active_jobs(), 1);
  EXPECT_EQ(net.host(hosts[0]).active_jobs_excluding(app.owner()), 0);
}

}  // namespace
}  // namespace netsel::appsim
