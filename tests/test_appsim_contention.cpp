// Application models under controlled network contention: closed-form and
// bounded-behaviour checks that pin down exactly how loosely-synchronous,
// master-slave and multi-phase (Airshed-like) structures respond to shared
// links — the causal mechanism behind every Table-1 number.

#include <gtest/gtest.h>

#include "appsim/loosely_synchronous.hpp"
#include "appsim/master_slave.hpp"
#include "load/traffic_generator.hpp"
#include "topo/generators.hpp"

namespace netsel::appsim {
namespace {

std::vector<topo::NodeId> hosts(const sim::NetworkSim& net,
                                std::initializer_list<const char*> names) {
  std::vector<topo::NodeId> out;
  for (const char* n : names)
    out.push_back(net.topology().find_node(n).value());
  return out;
}

TEST(LooselySyncContention, BulkStreamHalvesExchangeBandwidth) {
  // Ring exchange between two panama hosts shares m-2's downlink with a
  // bulk stream into m-2... no: keep it exact — share the inter-host path.
  // Setup: app on m-1, m-2; bulk stream m-3 -> m-2 congests m-2's
  // downlink, so the m-1 -> m-2 message runs at 50 Mbps while the
  // m-2 -> m-1 message keeps 100 Mbps. Phase ends with the slower one.
  sim::NetworkSim net(topo::testbed());
  auto m2 = net.topology().find_node("m-2").value();
  auto m3 = net.topology().find_node("m-3").value();
  load::BulkStream stream(net, m3, m2);
  stream.start();

  LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 4;
  cfg.phases = {PhaseSpec{0.0, 12.5e6, CommPattern::Ring}};
  LooselySynchronousApp app(net, cfg);
  app.start(hosts(net, {"m-1", "m-2"}));
  while (!app.finished() && net.sim().step()) {
  }
  // m-1 -> m-2 at 50 Mbps: 2 s; the reverse at 100 Mbps: 1 s. Barrier
  // waits for 2 s per iteration.
  EXPECT_NEAR(app.elapsed(), 4 * 2.0, 1e-6);
}

TEST(LooselySyncContention, BarrierCouplesComputeAndCommDegradation) {
  // One loaded node AND one congested link: per iteration the compute
  // phase takes work/0.5 (the loaded node gates) and the comm phase 2x
  // (the congested exchange gates) — degradations add up, which is why
  // the paper's load+traffic column is roughly cumulative.
  sim::NetworkSim net(topo::testbed());
  auto placement = hosts(net, {"m-1", "m-2"});
  net.host(placement[0]).submit(1e9, sim::kBackgroundOwner);  // 2x compute
  auto m2 = net.topology().find_node("m-2").value();
  auto m3 = net.topology().find_node("m-3").value();
  load::BulkStream stream(net, m3, m2);  // 2x the m-1 -> m-2 leg
  stream.start();

  LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 5;
  cfg.phases = {PhaseSpec{1.0, 12.5e6, CommPattern::Ring}};
  LooselySynchronousApp app(net, cfg);
  app.start(placement);
  while (!app.finished() && net.sim().step()) {
  }
  // Unloaded iteration would be 1 + 1 = 2 s; degraded: 2 + 2 = 4 s.
  EXPECT_NEAR(app.elapsed(), 5 * 4.0, 1e-6);
}

TEST(MasterSlaveContention, CongestedMasterUplinkThrottlesTheFarm) {
  // The farm's inputs all leave the master; a bulk stream out of the
  // master halves every input transfer, stretching io-bound farms.
  sim::NetworkSim net(topo::testbed());
  auto placement = hosts(net, {"m-1", "m-2", "m-3", "m-4"});
  MasterSlaveConfig cfg;
  cfg.num_nodes = 4;
  cfg.num_tasks = 30;
  cfg.task_work = 0.2;        // io-dominated on purpose
  cfg.input_bytes = 12.5e6;   // 1 s at full rate
  cfg.output_bytes = 0.0;

  auto run_farm = [&](bool congested) {
    sim::NetworkSim local(topo::testbed());
    auto nodes = hosts(local, {"m-1", "m-2", "m-3", "m-4"});
    std::unique_ptr<load::BulkStream> stream;
    if (congested) {
      auto m1 = local.topology().find_node("m-1").value();
      auto m9 = local.topology().find_node("m-9").value();
      stream = std::make_unique<load::BulkStream>(local, m1, m9);
      stream->start();
    }
    MasterSlaveApp app(local, cfg);
    app.start(nodes);
    while (!app.finished() && local.sim().step()) {
    }
    return app.elapsed();
  };
  (void)placement;
  double clean = run_farm(false);
  double congested = run_farm(true);
  // Clean: 3 synchronized inputs share the uplink at 33 Mbps -> 3 s + 0.2 s
  // per cycle, 10 cycles = 32 s. Congested: the stream is a 4th flow, so
  // inputs drop to 25 Mbps -> 4.2 s cycles = 42 s.
  EXPECT_NEAR(clean, 32.0, 0.5);
  EXPECT_NEAR(congested, 42.0, 0.5);
}

TEST(MasterSlaveContention, FarmThroughputBoundedByMasterLink) {
  // Serial lower bound: all inputs leave through one 100 Mbps uplink, so
  // the farm can never beat num_tasks * input_bits / capacity, however
  // many slaves it has.
  sim::NetworkSim net(topo::testbed());
  MasterSlaveConfig cfg;
  cfg.num_nodes = 10;  // 9 slaves
  cfg.num_tasks = 40;
  cfg.task_work = 0.01;
  cfg.input_bytes = 12.5e6;
  cfg.output_bytes = 0.0;
  MasterSlaveApp app(net, cfg);
  std::vector<topo::NodeId> nodes;
  for (int i = 1; i <= 10; ++i)
    nodes.push_back(net.topology().find_node("m-" + std::to_string(i)).value());
  app.start(nodes);
  while (!app.finished() && net.sim().step()) {
  }
  double serial_bound = 40 * 12.5e6 * 8.0 / 100e6;  // 40 s
  EXPECT_GE(app.elapsed(), serial_bound - 1e-6);
  EXPECT_LE(app.elapsed(), serial_bound * 1.2);
}

TEST(AirshedStructure, PhaseAccountingUnderPartialCongestion) {
  // Airshed's gather phase funnels into rank 0; congesting only that
  // funnel stretches the gather but leaves transport/chemistry unchanged.
  sim::NetworkSim net(topo::star(6));
  auto placement = net.topology().compute_nodes();
  placement.resize(5);

  LooselySyncConfig cfg;
  cfg.num_nodes = 5;
  cfg.iterations = 3;
  cfg.phases = {PhaseSpec{1.0, 0.0, CommPattern::None},
                PhaseSpec{0.0, 12.5e6, CommPattern::Gather}};
  // Clean run: gather = 4 senders into rank 0's downlink = 4 s/iter.
  {
    sim::NetworkSim clean(topo::star(6));
    LooselySynchronousApp app(clean, cfg);
    auto nodes = clean.topology().compute_nodes();
    nodes.resize(5);
    app.start(nodes);
    while (!app.finished() && clean.sim().step()) {
    }
    EXPECT_NEAR(app.elapsed(), 3 * (1.0 + 4.0), 1e-6);
  }
  // Congested funnel: a bulk stream from the 6th host into rank 0 claims
  // a fifth of the downlink: gather flows now share it 5 ways -> 5 s.
  {
    auto h5 = net.topology().find_node("h5").value();
    load::BulkStream stream(net, h5, placement[0]);
    stream.start();
    LooselySynchronousApp app(net, cfg);
    app.start(placement);
    while (!app.finished() && net.sim().step()) {
    }
    EXPECT_NEAR(app.elapsed(), 3 * (1.0 + 5.0), 1e-5);
  }
}

TEST(TrafficGeneratorContention, AppSlowdownGrowsWithIntensity) {
  // Monotone sanity across the §4.2 traffic generator's intensity knob.
  auto run_with = [&](double intensity) {
    sim::NetworkSim net(topo::testbed());
    load::TrafficGenConfig tcfg;
    tcfg.mean_interarrival = 0.5;
    tcfg.size_mean_bytes = 16e6;
    tcfg.size_sigma = 2.0;
    tcfg.intensity = intensity;
    load::TrafficGenerator gen(net, tcfg, util::Rng(3));
    gen.start();
    net.sim().run_until(300.0);
    LooselySyncConfig cfg;
    cfg.num_nodes = 4;
    cfg.iterations = 16;
    cfg.phases = {PhaseSpec{0.2, 2.5e6, CommPattern::AllToAll}};
    LooselySynchronousApp app(net, cfg);
    // Fixed spread placement crossing both trunks: worst case for traffic.
    app.start(hosts(net, {"m-1", "m-7", "m-13", "m-18"}));
    while (!app.finished() && net.sim().step()) {
    }
    return app.elapsed();
  };
  double none = run_with(0.0);
  double moderate = run_with(1.0);
  double heavy = run_with(3.0);
  EXPECT_LT(none, moderate);
  EXPECT_LT(moderate, heavy);
}

}  // namespace
}  // namespace netsel::appsim
