// Tests for the exact branch-and-bound selector (select/bnb.hpp).
//
// The headline claim is *bit-exactness*: wherever the brute-force oracle
// can run, the B&B must return the same feasibility flag, the same node
// ids, and the same objective bits — including the oracle's lexicographic
// tie-break (first optimal subset in enumeration order). The fuzz sweep
// runs every synthetic family at oracle-reachable sizes across seeds,
// option variants, m values, and criteria. Budget degradation is checked
// for soundness (incumbent <= bound, optimum <= bound, never a failure),
// the exact dominance mask for lex-safe winner preservation, and the whole
// search for determinism across thread counts and warm-start settings.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/bnb.hpp"
#include "select/brute_force.hpp"
#include "select/context.hpp"
#include "select/prune.hpp"
#include "topo/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace netsel::select {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Instance {
  std::string what;
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

/// Every generated topology family at oracle-reachable host counts, with
/// seeded loads and link availabilities (remos::apply_synthetic_load).
std::vector<Instance> instances(std::uint64_t seed) {
  std::vector<Instance> out;
  {
    auto ft = topo::fat_tree_for_hosts(24, 6, 2.0, seed);
    ft.cpu_jitter = 0.3;  // heterogeneous hosts exercise the cpu terms
    Instance inst;
    inst.what = "fat_tree seed " + std::to_string(seed);
    inst.graph = std::make_unique<topo::TopologyGraph>(topo::fat_tree(ft));
    out.push_back(std::move(inst));
  }
  {
    topo::CampusWanOptions cw;
    cw.campuses = 2;
    cw.buildings_per_campus = 2;
    cw.hosts_per_building = 3;
    cw.seed = seed;
    Instance inst;
    inst.what = "campus_wan seed " + std::to_string(seed);
    inst.graph = std::make_unique<topo::TopologyGraph>(topo::campus_wan(cw));
    out.push_back(std::move(inst));
  }
  {
    topo::RandomCoreEdgeOptions ce;
    ce.core_switches = 4;
    ce.edge_switches = 8;
    ce.hosts = 32;  // cyclic: BFS-path bottlenecks, orientation-sensitive
    ce.seed = seed;
    Instance inst;
    inst.what = "random_core_edge seed " + std::to_string(seed);
    inst.graph =
        std::make_unique<topo::TopologyGraph>(topo::random_core_edge(ce));
    out.push_back(std::move(inst));
  }
  for (auto& inst : out) {
    inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
    remos::apply_synthetic_load(*inst.snap, seed * 31 + 7);
  }
  return out;
}

/// Option variants covering the knobs that feed the exact objective
/// (fractions, priorities, fixed requirements, eligibility).
std::vector<std::pair<std::string, SelectionOptions>> option_variants() {
  std::vector<std::pair<std::string, SelectionOptions>> out;
  out.emplace_back("base", SelectionOptions{});
  SelectionOptions opt;
  opt.min_bw_bps = 40 * topo::kMbps;
  out.emplace_back("min_bw", opt);
  opt = {};
  opt.reference_bw = topo::k100Mbps;
  out.emplace_back("reference_bw", opt);
  opt = {};
  opt.cpu_priority = 2.0;
  opt.bw_priority = 0.5;
  out.emplace_back("priorities", opt);
  opt = {};
  opt.min_cpu_fraction = 0.6;
  out.emplace_back("min_cpu", opt);
  return out;
}

std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

std::size_t eligible_count(const SelectionContext& ctx,
                           const SelectionOptions& opt) {
  std::size_t n = 0;
  for (char e : ctx.eligibility(opt)) n += e ? 1 : 0;
  return n;
}

/// Sizes the brute force reaches comfortably in a sanitizer build.
constexpr std::uint64_t kOracleSubsetCap = 1'000'000;

void expect_bit_exact(const BnbResult& bnb, const BruteForceResult& bf,
                      const std::string& what) {
  ASSERT_EQ(bnb.feasible, bf.feasible) << what;
  EXPECT_TRUE(bnb.certified) << what;
  EXPECT_EQ(bnb.stop, BnbStop::Proven) << what;
  if (!bf.feasible) {
    EXPECT_EQ(bnb.upper_bound, -kInf) << what;
    return;
  }
  EXPECT_EQ(bnb.nodes, bf.nodes) << what;
  // Bit-exact, not almost-equal: == on the doubles (inf == inf holds).
  EXPECT_EQ(bnb.objective, bf.objective) << what;
  EXPECT_EQ(bnb.upper_bound, bnb.objective) << what;
}

TEST(BnbOracle, MatchesBruteForceBitExactlyOnAllFamilies) {
  for (std::uint64_t seed : {1u, 2u}) {
    for (const auto& inst : instances(seed)) {
      SelectionContext ctx(*inst.snap);
      for (const auto& [vname, base] : option_variants()) {
        for (int m : {1, 2, 4, 6, 8}) {
          SelectionOptions opt = base;
          opt.num_nodes = m;
          opt.exact.node_budget = 0;  // run to proof
          const std::size_t pool = eligible_count(ctx, opt);
          if (choose(pool, static_cast<std::uint64_t>(m)) > kOracleSubsetCap)
            continue;
          for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                              Criterion::Balanced}) {
            const std::string what = inst.what + " " + vname +
                                     " m=" + std::to_string(m) + " " +
                                     criterion_name(c);
            const auto bf = brute_force_select(ctx, opt, c);
            expect_bit_exact(branch_and_bound_select(ctx, opt, c), bf, what);
          }
        }
      }
    }
  }
}

TEST(BnbOracle, DominanceAndWarmStartTogglesPreserveTheAnswer) {
  for (const auto& inst : instances(1)) {
    SelectionContext ctx(*inst.snap);
    for (int m : {2, 4, 8}) {
      SelectionOptions opt;
      opt.num_nodes = m;
      opt.exact.node_budget = 0;
      const std::size_t pool = eligible_count(ctx, opt);
      if (choose(pool, static_cast<std::uint64_t>(m)) > kOracleSubsetCap)
        continue;
      for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                          Criterion::Balanced}) {
        const std::string what =
            inst.what + " m=" + std::to_string(m) + " " + criterion_name(c);
        const auto bf = brute_force_select(ctx, opt, c);
        for (bool prune : {true, false}) {
          for (bool warm : {true, false}) {
            SelectionOptions v = opt;
            v.exact.prune_dominance = prune;
            v.exact.warm_start = warm;
            expect_bit_exact(branch_and_bound_select(ctx, v, c), bf,
                             what + " prune=" + std::to_string(prune) +
                                 " warm=" + std::to_string(warm));
          }
        }
      }
    }
  }
}

TEST(BnbBudget, DegradedRunsReturnSoundBounds) {
  for (const auto& inst : instances(1)) {
    SelectionContext ctx(*inst.snap);
    SelectionOptions opt;
    opt.num_nodes = 6;
    const std::size_t pool = eligible_count(ctx, opt);
    if (choose(pool, 6) > kOracleSubsetCap) continue;
    for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                        Criterion::Balanced}) {
      SelectionOptions full = opt;
      full.exact.node_budget = 0;
      const auto bf = brute_force_select(ctx, full, c);
      for (std::uint64_t budget : {1u, 4u, 16u, 64u, 1024u}) {
        for (bool warm : {true, false}) {
          SelectionOptions v = opt;
          v.exact.node_budget = budget;
          v.exact.warm_start = warm;
          const auto r = branch_and_bound_select(ctx, v, c);
          const std::string what = inst.what + " " + criterion_name(c) +
                                   " budget=" + std::to_string(budget) +
                                   " warm=" + std::to_string(warm);
          // The incumbent never exceeds the certified bound, and the true
          // optimum never does either — that is what makes it a bound.
          if (r.feasible) EXPECT_LE(r.objective, r.upper_bound) << what;
          if (bf.feasible) {
            EXPECT_LE(bf.objective, r.upper_bound) << what;
            if (r.feasible) EXPECT_LE(r.objective, bf.objective) << what;
          }
          if (r.certified) {
            ASSERT_EQ(r.feasible, bf.feasible) << what;
            if (r.feasible) EXPECT_EQ(r.nodes, bf.nodes) << what;
          } else {
            EXPECT_NE(r.stop, BnbStop::Proven) << what;
          }
        }
      }
      // A tiny open list forces evictions; the result degrades to a sound
      // bound instead of failing.
      SelectionOptions v = opt;
      v.exact.node_budget = 0;
      v.exact.max_open = 8;
      const auto r = branch_and_bound_select(ctx, v, c);
      if (bf.feasible) {
        EXPECT_LE(bf.objective, r.upper_bound) << inst.what;
        if (r.feasible) EXPECT_LE(r.objective, bf.objective) << inst.what;
      }
    }
  }
}

TEST(BnbBudget, GapToleranceCertifiesTheStatedGap) {
  auto insts = instances(1);
  SelectionContext ctx(*insts[0].snap);
  SelectionOptions opt;
  opt.num_nodes = 6;
  opt.exact.node_budget = 0;
  opt.exact.gap_tolerance = 0.5;
  for (Criterion c : {Criterion::MaxCompute, Criterion::Balanced}) {
    const auto r = branch_and_bound_select(ctx, opt, c);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.objective, r.upper_bound);
    if (r.stop == BnbStop::GapReached)
      EXPECT_GE(r.objective, (1.0 - opt.exact.gap_tolerance) * r.upper_bound);
  }
}

TEST(BnbDeterminism, SameBitsAtAnyThreadCount) {
  for (const auto& inst : instances(2)) {
    SelectionOptions opt;
    opt.num_nodes = 6;
    opt.exact.node_budget = 2000;  // budgeted runs must be deterministic too
    for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                        Criterion::Balanced}) {
      BnbResult base;
      bool first = true;
      for (int threads : {0, 1, 4}) {
        util::ThreadPool pool(threads);
        SelectionContext ctx(*inst.snap);
        ctx.set_pool(threads == 0 ? nullptr : &pool);
        const auto r = branch_and_bound_select(ctx, opt, c);
        if (first) {
          base = r;
          first = false;
          continue;
        }
        const std::string what = inst.what + " " + criterion_name(c) +
                                 " threads=" + std::to_string(threads);
        EXPECT_EQ(r.feasible, base.feasible) << what;
        EXPECT_EQ(r.nodes, base.nodes) << what;
        EXPECT_EQ(r.objective, base.objective) << what;
        EXPECT_EQ(r.upper_bound, base.upper_bound) << what;
        EXPECT_EQ(r.certified, base.certified) << what;
        EXPECT_EQ(r.stats.expanded, base.stats.expanded) << what;
        EXPECT_EQ(r.stats.pushed, base.stats.pushed) << what;
      }
    }
  }
}

// ------------------------------------------------------ exact mask units

/// A star: one switch, degree-1 hosts. In the heterogeneous version host i
/// strictly dominates every host j > i on all three keys; in the
/// homogeneous version all hosts tie exactly.
struct Star {
  topo::TopologyGraph g;
  std::vector<topo::NodeId> hosts;
  topo::NodeId sw;
};

Star make_star(bool heterogeneous) {
  Star s;
  s.sw = s.g.add_network("sw");
  for (int i = 0; i < 6; ++i) {
    double capacity = heterogeneous ? 2.0 - 0.1 * i : 1.0;
    auto h = s.g.add_compute("h" + std::to_string(i), capacity);
    double bw = heterogeneous ? (100.0 - i) * topo::kMbps : topo::k100Mbps;
    s.g.add_link(s.sw, h, bw);
    s.hosts.push_back(h);
  }
  s.g.validate();
  return s;
}

std::vector<char> eligible_mask(const remos::NetworkSnapshot& snap,
                                const SelectionOptions& opt) {
  std::vector<char> elig(snap.graph().node_count(), 0);
  for (std::size_t i = 0; i < snap.graph().node_count(); ++i)
    elig[i] = node_eligible(snap, static_cast<topo::NodeId>(i), opt) ? 1 : 0;
  return elig;
}

TEST(ExactDominatedMask, PrunesTiesTowardLowerIdsUnlikeTheGreedyMask) {
  // All six hosts tie on every key: the greedy mask must keep them all
  // (test_select_prune covers that), but the exact mask may — and does —
  // prune ties, because a strictly-lower-id dominator makes the swap
  // lexicographically improving at equal value.
  auto s = make_star(/*heterogeneous=*/false);
  remos::NetworkSnapshot snap(s.g);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto elig = eligible_mask(snap, opt);
  auto cand = exact_dominated_candidate_mask(snap, opt, elig);
  EXPECT_TRUE(cand[static_cast<std::size_t>(s.hosts[0])]);
  EXPECT_TRUE(cand[static_cast<std::size_t>(s.hosts[1])]);
  for (std::size_t i = 2; i < s.hosts.size(); ++i)
    EXPECT_FALSE(cand[static_cast<std::size_t>(s.hosts[i])]) << "host " << i;

  // And the pruned search still returns the brute-force answer: the
  // lexicographically first optimal pair.
  SelectionContext ctx(snap);
  const auto bf = brute_force_select(ctx, opt, Criterion::MaxBandwidth);
  const auto r = branch_and_bound_select(ctx, opt, Criterion::MaxBandwidth);
  ASSERT_TRUE(bf.feasible);
  EXPECT_EQ(r.nodes, bf.nodes);
  EXPECT_EQ(r.objective, bf.objective);
  EXPECT_TRUE(r.certified);
  EXPECT_GE(r.stats.pool_dominated, 4u);
}

TEST(ExactDominatedMask, KeepsStrictDominatorsAndAppliesAtMEqualsOne) {
  auto s = make_star(/*heterogeneous=*/true);
  remos::NetworkSnapshot snap(s.g);
  SelectionOptions opt;
  opt.num_nodes = 1;  // subset semantics: the mask applies even at m = 1
  auto elig = eligible_mask(snap, opt);
  auto cand = exact_dominated_candidate_mask(snap, opt, elig);
  EXPECT_TRUE(cand[static_cast<std::size_t>(s.hosts[0])]);
  for (std::size_t i = 1; i < s.hosts.size(); ++i)
    EXPECT_FALSE(cand[static_cast<std::size_t>(s.hosts[i])]) << "host " << i;
}

// ------------------------------------------------------------ edge cases

TEST(BnbEdges, InfeasibleAndDegradedModes) {
  auto insts = instances(1);
  SelectionContext ctx(*insts[0].snap);

  // More slots than hosts: proven infeasible, like the oracle.
  SelectionOptions opt;
  opt.num_nodes = 1000;
  const auto inf = branch_and_bound_select(ctx, opt, Criterion::Balanced);
  EXPECT_FALSE(inf.feasible);
  EXPECT_TRUE(inf.certified);
  EXPECT_EQ(inf.upper_bound, -kInf);

  // A pool cap below the candidate count degrades to the greedy incumbent
  // with an unbounded gap — never a failure.
  opt.num_nodes = 4;
  opt.exact.max_pool = 2;
  const auto capped = branch_and_bound_select(ctx, opt, Criterion::Balanced);
  EXPECT_EQ(capped.stop, BnbStop::PoolLimit);
  EXPECT_FALSE(capped.certified);
  EXPECT_TRUE(capped.feasible);
  EXPECT_EQ(capped.upper_bound, kInf);
  EXPECT_EQ(capped.nodes.size(), 4u);
}

TEST(BnbEdges, SelectNodesRoutesExactModeFirstClass) {
  auto insts = instances(1);
  SelectionContext ctx(*insts[0].snap);
  SelectionOptions opt;
  opt.num_nodes = 4;
  opt.exact.enabled = true;
  opt.exact.node_budget = 0;
  for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                      Criterion::Balanced}) {
    const auto bf = brute_force_select(ctx, opt, c);
    const auto r = select_nodes(c, ctx, opt);
    ASSERT_EQ(r.feasible, bf.feasible) << criterion_name(c);
    EXPECT_EQ(r.nodes, bf.nodes) << criterion_name(c);
    EXPECT_EQ(r.objective, bf.objective) << criterion_name(c);
    EXPECT_TRUE(r.exact_certified) << criterion_name(c);
    EXPECT_EQ(r.objective_bound, r.objective) << criterion_name(c);
    EXPECT_EQ(r.note, "exact: certified optimal") << criterion_name(c);
    // The greedy answer scored on the exact scale never beats the optimum.
    SelectionOptions greedy = opt;
    greedy.exact.enabled = false;
    const auto g = select_nodes(c, ctx, greedy);
    if (g.feasible && bf.feasible)
      EXPECT_LE(exact_set_value(ctx, opt, c, g.nodes), bf.objective)
          << criterion_name(c);
  }
}

}  // namespace
}  // namespace netsel::select
