#include "topo/connectivity.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace netsel::topo {
namespace {

TEST(Components, SingleComponentWhenAllActive) {
  auto g = testbed();
  auto c = connected_components(g);
  EXPECT_EQ(c.count, 1);
  EXPECT_EQ(c.node_count[0], 21);
  EXPECT_EQ(c.compute_count[0], 18);
}

TEST(Components, SplitsWhenBackboneRemoved) {
  auto g = testbed();
  // Deactivate the two router-router links (ids 0 and 1 by construction).
  std::vector<char> mask(g.link_count(), 1);
  mask[0] = 0;  // panama--gibraltar
  mask[1] = 0;  // gibraltar--suez
  auto c = connected_components(g, mask);
  EXPECT_EQ(c.count, 3);
  // Each router keeps its 6 hosts.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.node_count[static_cast<std::size_t>(i)], 7);
    EXPECT_EQ(c.compute_count[static_cast<std::size_t>(i)], 6);
  }
}

TEST(Components, IsolatedHostWhenAccessLinkRemoved) {
  auto g = testbed();
  NodeId m1 = g.find_node("m-1").value();
  std::vector<char> mask(g.link_count(), 1);
  mask[static_cast<std::size_t>(g.links_of(m1)[0])] = 0;
  auto c = connected_components(g, mask);
  EXPECT_EQ(c.count, 2);
  int c_of_m1 = c.comp_of[static_cast<std::size_t>(m1)];
  EXPECT_EQ(c.node_count[static_cast<std::size_t>(c_of_m1)], 1);
  EXPECT_EQ(c.compute_count[static_cast<std::size_t>(c_of_m1)], 1);
}

TEST(Components, AllLinksRemovedEveryNodeAlone) {
  auto g = star(4);
  std::vector<char> mask(g.link_count(), 0);
  auto c = connected_components(g, mask);
  EXPECT_EQ(c.count, static_cast<int>(g.node_count()));
}

TEST(Components, MembersReturnsNodesInOrder) {
  auto g = star(3);
  auto c = connected_components(g);
  auto members = c.members(0);
  ASSERT_EQ(members.size(), 4u);
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
}

TEST(Components, MaskSizeMismatchThrows) {
  auto g = star(3);
  std::vector<char> bad(g.link_count() + 1, 1);
  EXPECT_THROW(connected_components(g, bad), std::invalid_argument);
}

TEST(LargestComputeComponent, PicksBiggest) {
  auto g = dumbbell(2, 5);
  std::vector<char> mask(g.link_count(), 1);
  mask[0] = 0;  // the bottleneck link is added first
  auto c = connected_components(g, mask);
  ASSERT_EQ(c.count, 2);
  int best = largest_compute_component(c);
  EXPECT_EQ(c.compute_count[static_cast<std::size_t>(best)], 5);
}

TEST(LargestComputeComponent, NoComputeNodesGivesMinusOne) {
  Components c;
  c.count = 1;
  c.compute_count = {0};
  c.node_count = {3};
  c.comp_of = {0, 0, 0};
  EXPECT_EQ(largest_compute_component(c), -1);
}

}  // namespace
}  // namespace netsel::topo
