// The incremental-vs-rebuilt oracle for the typed-delta snapshot path:
// a long-lived SelectionContext that consumes remos::Delta journals with
// fine-grained invalidation (in-place row value repair, CSR patching,
// per-row drop on link removal) must stay *bit-identical* to a context
// rebuilt from scratch after arbitrary delta sequences — orders, component
// decompositions, bottleneck rows, selections under every criterion, and
// set evaluations. Also covers the journal mechanics (typed emission,
// bounded trimming, overflow fallback), the CSR patch-vs-rebuild equality,
// row storage stability under value-only deltas, and the bounded-migration
// reselect layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/reselect.hpp"
#include "select/algorithms.hpp"
#include "select/context.hpp"
#include "select/objective.hpp"
#include "topo/connectivity.hpp"
#include "topo/generators.hpp"
#include "topo/synthetic.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netsel {
namespace {

struct Instance {
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

/// One small instance per synthetic family, loads applied.
Instance family_instance(int family, std::uint64_t seed) {
  Instance inst;
  inst.graph = std::make_unique<topo::TopologyGraph>([&] {
    switch (family % 3) {
      case 0: {
        topo::FatTreeOptions o;
        o.edge_switches = 4;
        o.hosts_per_edge = 5;
        o.core_switches = 2;
        o.seed = seed + 1;
        return topo::fat_tree(o);
      }
      case 1: {
        topo::CampusWanOptions o;
        o.campuses = 3;
        o.buildings_per_campus = 2;
        o.hosts_per_building = 3;
        o.seed = seed + 1;
        return topo::campus_wan(o);
      }
      default: {
        topo::RandomCoreEdgeOptions o;
        o.core_switches = 3;
        o.edge_switches = 5;
        o.hosts = 18;
        o.seed = seed + 1;
        return topo::random_core_edge(o);
      }
    }
  }());
  inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
  remos::apply_synthetic_load(*inst.snap, seed * 31 + 7);
  return inst;
}

std::vector<topo::LinkId> present_links(const topo::TopologyGraph& g) {
  std::vector<topo::LinkId> out;
  for (std::size_t l = 0; l < g.link_count(); ++l)
    if (!g.link_removed(static_cast<topo::LinkId>(l)))
      out.push_back(static_cast<topo::LinkId>(l));
  return out;
}

std::vector<topo::NodeId> present_computes(const topo::TopologyGraph& g) {
  std::vector<topo::NodeId> out;
  for (std::size_t i = 0; i < g.node_count(); ++i)
    if (g.is_compute(static_cast<topo::NodeId>(i)))
      out.push_back(static_cast<topo::NodeId>(i));
  return out;
}

/// One random mutation of the graph+snapshot pair, spanning every delta
/// kind; notifications follow mutations in order, as the contract requires.
void random_mutation(util::Rng& rng, topo::TopologyGraph& g,
                     remos::NetworkSnapshot& snap, int& name_counter) {
  const double roll = rng.uniform(0.0, 1.0);
  if (roll < 0.50) {  // link bandwidth
    auto links = present_links(g);
    if (links.empty()) return;
    auto l = links[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))];
    snap.set_bw(l, rng.uniform(0.05, 1.0) * snap.maxbw(l));
  } else if (roll < 0.65) {  // node load / memory
    auto hosts = present_computes(g);
    if (hosts.empty()) return;
    auto n = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    if (rng.bernoulli(0.5))
      snap.set_loadavg(n, rng.uniform(0.0, 4.0));
    else
      snap.set_free_memory(n, rng.uniform(0.0, 2e9));
  } else if (roll < 0.75) {  // remove a link
    auto links = present_links(g);
    if (links.size() <= 6) return;  // keep the graph interesting
    auto l = links[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1))];
    g.remove_link(l);
    snap.notify_link_removed(l);
  } else if (roll < 0.88) {  // add a link
    std::vector<topo::NodeId> nodes;
    for (std::size_t i = 0; i < g.node_count(); ++i)
      if (!g.node_removed(static_cast<topo::NodeId>(i)))
        nodes.push_back(static_cast<topo::NodeId>(i));
    if (nodes.size() < 2) return;
    auto a = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    auto b = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    if (a == b) return;
    try {
      auto id = g.add_link(a, b, rng.uniform(10.0, 100.0) * topo::kMbps);
      snap.notify_link_added(id);
    } catch (const std::invalid_argument&) {
      // duplicate/rejected link: mutation skipped, graph unchanged
    }
  } else if (roll < 0.95) {  // add a compute host
    auto id = g.add_compute("churn" + std::to_string(name_counter++));
    snap.notify_node_added(id);
  } else {  // isolate and remove a compute host
    auto hosts = present_computes(g);
    if (hosts.size() <= 4) return;
    auto n = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    const auto span = g.links_of(n);
        const std::vector<topo::LinkId> incident(span.begin(), span.end());
    for (topo::LinkId l : incident) {
      g.remove_link(l);
      snap.notify_link_removed(l);
    }
    g.remove_node(n);
    snap.notify_node_removed(n);
  }
}

void expect_rows_equal(const topo::BottleneckRow& a,
                       const topo::BottleneckRow& b, const std::string& what) {
  EXPECT_EQ(a.bottleneck, b.bottleneck) << what;
  EXPECT_EQ(a.bottleneck2, b.bottleneck2) << what;
  EXPECT_EQ(a.latency, b.latency) << what;
  EXPECT_EQ(a.reached, b.reached) << what;
  EXPECT_EQ(a.tree_link, b.tree_link) << what;
  EXPECT_EQ(a.order, b.order) << what;
}

constexpr select::Criterion kCriteria[] = {select::Criterion::MaxCompute,
                                           select::Criterion::MaxBandwidth,
                                           select::Criterion::Balanced};

/// The oracle: every observable of the incrementally maintained context is
/// bit-identical to a context built from scratch on the current snapshot.
void expect_matches_rebuild(const select::SelectionContext& inc,
                            const remos::NetworkSnapshot& snap,
                            const std::string& what) {
  select::SelectionContext fresh(snap);
  const auto& g = snap.graph();

  EXPECT_EQ(inc.acyclic(), fresh.acyclic()) << what;
  EXPECT_EQ(inc.link_bw(), fresh.link_bw()) << what;
  EXPECT_EQ(inc.link_bwfactor(), fresh.link_bwfactor()) << what;
  EXPECT_EQ(inc.links_by_bw(), fresh.links_by_bw()) << what;
  select::SelectionOptions fraction_opt;
  EXPECT_EQ(inc.links_by_fraction(fraction_opt),
            fresh.links_by_fraction(fraction_opt))
      << what;

  const topo::CsrAdjacency& ca = inc.csr();
  const topo::CsrAdjacency& cb = fresh.csr();
  EXPECT_EQ(ca.row_start, cb.row_start) << what;
  EXPECT_EQ(ca.neighbor, cb.neighbor) << what;
  EXPECT_EQ(ca.via, cb.via) << what;
  EXPECT_EQ(ca.link_latency, cb.link_latency) << what;
  EXPECT_EQ(ca.is_compute, cb.is_compute) << what;

  const topo::Components& xa = inc.base_components();
  const topo::Components& xb = fresh.base_components();
  EXPECT_EQ(xa.comp_of, xb.comp_of) << what;
  EXPECT_EQ(xa.count, xb.count) << what;
  EXPECT_EQ(xa.compute_count, xb.compute_count) << what;
  EXPECT_EQ(xa.node_count, xb.node_count) << what;

  auto hosts = present_computes(g);
  for (std::size_t i = 0; i < hosts.size() && i < 12; ++i)
    expect_rows_equal(inc.pair_row(hosts[i]), fresh.pair_row(hosts[i]),
                      what + " row " + std::to_string(hosts[i]));

  for (select::Criterion c : kCriteria) {
    for (bool pruned : {true, false}) {
      select::SelectionOptions opt;
      opt.num_nodes = 4;
      opt.prune_dominated = pruned;
      auto a = select::select_nodes(c, inc, opt);
      auto b = select::select_nodes(c, fresh, opt);
      const std::string tag = what + " criterion " +
                              select::criterion_name(c) +
                              (pruned ? " pruned" : " unpruned");
      ASSERT_EQ(a.feasible, b.feasible) << tag;
      EXPECT_EQ(a.nodes, b.nodes) << tag;
      EXPECT_EQ(a.iterations, b.iterations) << tag;
      if (a.feasible) {
        EXPECT_EQ(a.min_cpu, b.min_cpu) << tag;
        EXPECT_EQ(a.min_bw_fraction, b.min_bw_fraction) << tag;
        EXPECT_EQ(a.objective, b.objective) << tag;
        auto ea = evaluate_set(inc, a.nodes, opt);
        auto eb = evaluate_set(fresh, b.nodes, opt);
        EXPECT_EQ(ea.connected, eb.connected) << tag;
        EXPECT_EQ(ea.min_cpu, eb.min_cpu) << tag;
        EXPECT_EQ(ea.min_pair_bw, eb.min_pair_bw) << tag;
        EXPECT_EQ(ea.min_pair_bw_fraction, eb.min_pair_bw_fraction) << tag;
        EXPECT_EQ(ea.balanced, eb.balanced) << tag;
        EXPECT_EQ(ea.max_pair_latency, eb.max_pair_latency) << tag;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Journal mechanics
// ---------------------------------------------------------------------------

TEST(DeltaJournal, MutationsEmitTypedDeltas) {
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto a = g.add_compute("a");
  auto b = g.add_compute("b");
  auto la = g.add_link(sw, a, topo::k100Mbps);
  auto lb = g.add_link(sw, b, topo::k100Mbps);
  remos::NetworkSnapshot snap(g);
  const std::uint64_t e0 = snap.epoch();

  snap.set_loadavg(a, 1.0);  // cpu becomes 0.5
  snap.set_free_memory(a, 123.0);
  snap.set_bw(la, 5e6);
  snap.set_bw_dir(lb, true, 7e6);
  EXPECT_EQ(snap.epoch(), e0 + 4);

  std::vector<remos::Delta> out;
  ASSERT_TRUE(snap.deltas_since(e0, out));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].kind, remos::DeltaKind::NodeLoad);
  EXPECT_EQ(out[0].node, a);
  EXPECT_DOUBLE_EQ(out[0].value, 0.5);
  EXPECT_EQ(out[1].kind, remos::DeltaKind::NodeMemory);
  EXPECT_DOUBLE_EQ(out[1].value, 123.0);
  EXPECT_EQ(out[2].kind, remos::DeltaKind::LinkBandwidth);
  EXPECT_EQ(out[2].link, la);
  EXPECT_DOUBLE_EQ(out[2].value, 5e6);
  EXPECT_EQ(out[3].kind, remos::DeltaKind::LinkBandwidth);
  EXPECT_EQ(out[3].link, lb);
  EXPECT_DOUBLE_EQ(out[3].value, 7e6);  // min over the two directions
  EXPECT_FALSE(remos::delta_is_structural(out[0].kind));

  const std::uint64_t e1 = snap.epoch();
  auto c = g.add_compute("c");
  snap.notify_node_added(c);
  auto lc = g.add_link(sw, c, topo::k100Mbps);
  snap.notify_link_added(lc);
  g.remove_link(la);
  snap.notify_link_removed(la);
  out.clear();
  ASSERT_TRUE(snap.deltas_since(e1, out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kind, remos::DeltaKind::NodeAdded);
  EXPECT_EQ(out[0].node, c);
  EXPECT_EQ(out[1].kind, remos::DeltaKind::LinkAdded);
  EXPECT_EQ(out[1].link, lc);
  EXPECT_EQ(out[2].kind, remos::DeltaKind::LinkRemoved);
  EXPECT_EQ(out[2].link, la);
  for (const auto& d : out) {
    EXPECT_TRUE(remos::delta_is_structural(d.kind));
    EXPECT_NE(remos::delta_kind_name(d.kind), nullptr);
  }
  EXPECT_DOUBLE_EQ(snap.bw(la), 0.0);  // tombstoned link reports zero

  // Since-now is valid and appends nothing; the future throws.
  out.clear();
  EXPECT_TRUE(snap.deltas_since(snap.epoch(), out));
  EXPECT_TRUE(out.empty());
  EXPECT_THROW(snap.deltas_since(snap.epoch() + 1, out),
               std::invalid_argument);
}

TEST(DeltaJournal, BoundedJournalTrimsOldest) {
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto a = g.add_compute("a");
  auto l = g.add_link(sw, a, topo::k100Mbps);
  remos::NetworkSnapshot snap(g);
  snap.set_delta_journal_capacity(3);
  EXPECT_EQ(snap.delta_journal_capacity(), 3u);

  for (int i = 1; i <= 5; ++i) snap.set_bw(l, 1e6 * i);
  std::vector<remos::Delta> out;
  // The three most recent deltas are retained...
  ASSERT_TRUE(snap.deltas_since(snap.epoch() - 3, out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].value, 3e6);
  EXPECT_DOUBLE_EQ(out[2].value, 5e6);
  // ...anything older has been trimmed.
  out.clear();
  EXPECT_FALSE(snap.deltas_since(snap.epoch() - 4, out));
  EXPECT_TRUE(out.empty());

  // Capacity zero: the epoch still moves, every catch-up is a rebuild.
  snap.set_delta_journal_capacity(0);
  snap.set_bw(l, 9e6);
  EXPECT_FALSE(snap.deltas_since(snap.epoch() - 1, out));
  EXPECT_TRUE(snap.deltas_since(snap.epoch(), out));
}

// ---------------------------------------------------------------------------
// CSR patching
// ---------------------------------------------------------------------------

TEST(CsrPatching, RandomMutationSequencesMatchRebuild) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    topo::RandomCoreEdgeOptions o;
    o.core_switches = 3;
    o.edge_switches = 4;
    o.hosts = 12;
    o.seed = seed + 1;
    topo::TopologyGraph g = topo::random_core_edge(o);
    topo::CsrAdjacency patched = topo::CsrAdjacency::build(g);
    util::Rng rng(seed * 271 + 9);
    int names = 0;
    for (int step = 0; step < 30; ++step) {
      const double roll = rng.uniform(0.0, 1.0);
      if (roll < 0.35) {
        auto links = present_links(g);
        if (links.size() <= 4) continue;
        auto l = links[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(links.size()) - 1))];
        g.remove_link(l);
        patched.patch_remove_link(g, l);
      } else if (roll < 0.70) {
        auto an = static_cast<topo::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
        auto bn = static_cast<topo::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(g.node_count()) - 1));
        if (an == bn || g.node_removed(an) || g.node_removed(bn)) continue;
        auto id = g.add_link(an, bn, topo::k100Mbps);
        patched.patch_add_link(g, id);
      } else if (roll < 0.9) {
        auto id = g.add_compute("p" + std::to_string(names++));
        patched.patch_add_node(g, id);
      } else {
        auto hosts = present_computes(g);
        if (hosts.size() <= 4) continue;
        auto n = hosts[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(hosts.size()) - 1))];
        const auto span = g.links_of(n);
        const std::vector<topo::LinkId> incident(span.begin(), span.end());
        for (topo::LinkId l : incident) {
          g.remove_link(l);
          patched.patch_remove_link(g, l);
        }
        g.remove_node(n);
        patched.patch_remove_node(n);
      }
      topo::CsrAdjacency rebuilt = topo::CsrAdjacency::build(g);
      const std::string what =
          "seed " + std::to_string(seed) + " step " + std::to_string(step);
      ASSERT_EQ(patched.row_start, rebuilt.row_start) << what;
      ASSERT_EQ(patched.neighbor, rebuilt.neighbor) << what;
      ASSERT_EQ(patched.via, rebuilt.via) << what;
      ASSERT_EQ(patched.link_latency, rebuilt.link_latency) << what;
      ASSERT_EQ(patched.is_compute, rebuilt.is_compute) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// The incremental-vs-rebuilt oracle
// ---------------------------------------------------------------------------

TEST(IncrementalOracle, FuzzDeltaSequencesBitIdenticalToRebuild) {
  for (int family = 0; family < 3; ++family) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      auto inst = family_instance(family, seed);
      util::Rng rng(seed * 9176 + static_cast<std::uint64_t>(family));
      select::SelectionContext ctx(*inst.snap);
      // Warm every cache first so the deltas exercise repair and patching,
      // not cold builds.
      expect_matches_rebuild(ctx, *inst.snap, "warmup");
      int names = 0;
      for (int step = 0; step < 32; ++step) {
        random_mutation(rng, *inst.graph, *inst.snap, names);
        // Check both single-delta and batched catch-up windows.
        if (step % 4 == 3 || step == 31) {
          expect_matches_rebuild(
              ctx, *inst.snap,
              "family " + std::to_string(family) + " seed " +
                  std::to_string(seed) + " step " + std::to_string(step));
          if (::testing::Test::HasFailure()) return;
        }
      }
    }
  }
}

TEST(IncrementalOracle, JournalOverflowFallsBackToFullRebuild) {
  auto inst = family_instance(0, 11);
  inst.snap->set_delta_journal_capacity(3);
  select::SelectionContext ctx(*inst.snap);
  expect_matches_rebuild(ctx, *inst.snap, "warmup");
  util::Rng rng(77);
  int names = 0;
  // Far more deltas than the journal retains: catch-up must take the
  // drop-everything path and still be correct.
  for (int step = 0; step < 10; ++step)
    random_mutation(rng, *inst.graph, *inst.snap, names);
  expect_matches_rebuild(ctx, *inst.snap, "after overflow");
}

TEST(IncrementalOracle, ValueDeltasKeepRowStorage) {
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  std::vector<topo::NodeId> h;
  std::vector<topo::LinkId> hl;
  for (int i = 0; i < 4; ++i) {
    h.push_back(g.add_compute("h" + std::to_string(i)));
    hl.push_back(g.add_link(sw, h.back(), topo::k100Mbps));
  }
  remos::NetworkSnapshot snap(g);
  select::SelectionContext ctx(snap);
  const topo::BottleneckRow* row = &ctx.pair_row(h[0]);

  // Node sensor deltas invalidate nothing.
  snap.set_loadavg(h[1], 2.0);
  EXPECT_EQ(&ctx.pair_row(h[0]), row);

  // A bandwidth delta on a tree link repairs the row in place: same
  // storage, updated values.
  snap.set_bw(hl[1], 40e6);
  EXPECT_EQ(&ctx.pair_row(h[0]), row);
  EXPECT_DOUBLE_EQ(
      ctx.pair_row(h[0]).bottleneck[static_cast<std::size_t>(h[1])], 40e6);
  {
    select::SelectionContext fresh(snap);
    expect_rows_equal(ctx.pair_row(h[0]), fresh.pair_row(h[0]), "post-bw");
  }

  // A host added elsewhere extends the row in place (one unreached entry).
  auto extra = g.add_compute("extra");
  snap.notify_node_added(extra);
  EXPECT_EQ(&ctx.pair_row(h[0]), row);
  EXPECT_EQ(row->bottleneck.size(), g.node_count());
  EXPECT_EQ(row->reached[static_cast<std::size_t>(extra)], 0);
  {
    select::SelectionContext fresh(snap);
    expect_rows_equal(ctx.pair_row(h[0]), fresh.pair_row(h[0]), "post-add");
  }
}

TEST(IncrementalOracle, WarmedRowsStayConsistentAcrossDeltas) {
  auto inst = family_instance(0, 3);
  util::ThreadPool pool(2);
  select::SelectionContext ctx(*inst.snap);
  ctx.warm_rows(pool, present_computes(*inst.graph));
  auto links = present_links(*inst.graph);
  inst.snap->set_bw(links[1], 0.5 * inst.snap->maxbw(links[1]));
  inst.snap->set_bw(links[3], 0.25 * inst.snap->maxbw(links[3]));
  expect_matches_rebuild(ctx, *inst.snap, "after warm+delta");
}

// ---------------------------------------------------------------------------
// Bounded-migration reselect
// ---------------------------------------------------------------------------

TEST(Reselect, UnboundedAdoptsTheOptimum) {
  auto inst = family_instance(0, 21);
  select::SelectionContext ctx(*inst.snap);
  auto hosts = present_computes(*inst.graph);
  std::vector<topo::NodeId> current(hosts.begin(), hosts.begin() + 6);

  api::ReselectOptions opt;
  opt.criterion = select::Criterion::Balanced;
  auto res = api::reselect(ctx, current, opt);
  ASSERT_TRUE(res.feasible);

  select::SelectionOptions sopt;
  sopt.num_nodes = 6;
  auto best = select::select_nodes(select::Criterion::Balanced, ctx, sopt);
  auto sorted_best = best.nodes;
  std::sort(sorted_best.begin(), sorted_best.end());
  EXPECT_EQ(res.nodes, sorted_best);
  EXPECT_EQ(res.migrations, static_cast<int>(res.migrated_in.size()));
  EXPECT_EQ(res.migrated_in.size(), res.migrated_out.size());
  EXPECT_DOUBLE_EQ(res.objective_after, res.objective_unbounded);
}

TEST(Reselect, ZeroBudgetKeepsAnEligiblePlacement) {
  auto inst = family_instance(1, 5);
  select::SelectionContext ctx(*inst.snap);
  auto hosts = present_computes(*inst.graph);
  std::vector<topo::NodeId> current(hosts.begin(), hosts.begin() + 4);

  api::ReselectOptions opt;
  opt.max_migrations = 0;
  auto res = api::reselect(ctx, current, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.nodes, current);
  EXPECT_EQ(res.migrations, 0);
  EXPECT_DOUBLE_EQ(res.objective_after, res.objective_before);
}

TEST(Reselect, BudgetBoundsMigrationsAndNeverHurts) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = family_instance(static_cast<int>(seed % 3), seed + 40);
    select::SelectionContext ctx(*inst.snap);
    auto hosts = present_computes(*inst.graph);
    // A deliberately bad starting placement: the last hosts by id.
    std::vector<topo::NodeId> current(hosts.end() - 5, hosts.end());
    for (int budget : {0, 1, 2, 4}) {
      api::ReselectOptions opt;
      opt.max_migrations = budget;
      auto res = api::reselect(ctx, current, opt);
      ASSERT_TRUE(res.feasible) << seed << " budget " << budget;
      EXPECT_LE(res.migrations, budget) << seed;
      EXPECT_GE(res.objective_after, res.objective_before) << seed;
      // The unconstrained "optimum" is itself a greedy heuristic, so a
      // bounded swap sequence can beat it — only require it to be positive.
      EXPECT_GT(res.objective_unbounded, 0.0) << seed;
      EXPECT_EQ(res.nodes.size(), current.size()) << seed;
    }
  }
}

TEST(Reselect, IneligibleMembersAreReplacedDespiteZeroBudget) {
  auto inst = family_instance(0, 9);
  auto& g = *inst.graph;
  auto& snap = *inst.snap;
  select::SelectionContext ctx(snap);
  auto hosts = present_computes(g);
  std::vector<topo::NodeId> current(hosts.begin(), hosts.begin() + 5);

  // Tear the first member out of the fabric entirely.
  const topo::NodeId victim = current[0];
  const auto span = g.links_of(victim);
  const std::vector<topo::LinkId> incident(span.begin(), span.end());
  for (topo::LinkId l : incident) {
    g.remove_link(l);
    snap.notify_link_removed(l);
  }
  g.remove_node(victim);
  snap.notify_node_removed(victim);

  api::ReselectOptions opt;
  opt.max_migrations = 0;
  auto res = api::reselect(ctx, current, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.nodes.size(), current.size());
  EXPECT_FALSE(std::count(res.nodes.begin(), res.nodes.end(), victim));
  EXPECT_EQ(res.migrations, 1);  // the forced replacement, despite budget 0
  ASSERT_EQ(res.migrated_out.size(), 1u);
  EXPECT_EQ(res.migrated_out[0], victim);
}

TEST(Reselect, InfeasibleSelectionKeepsCurrentAndSaysSo) {
  // When the unconstrained selection is infeasible the current placement
  // stays in force: kept_current is the explicit signal, nodes are the
  // unchanged current set, and objective_after scores that kept set (it
  // must NOT report 0 — the job is still running there). The second
  // early-exit (refill exhaustion) shares the same contract but is
  // defensive: the optimum always has enough members to refill from.
  auto inst = family_instance(2, 13);
  select::SelectionContext ctx(*inst.snap);
  auto hosts = present_computes(*inst.graph);
  std::vector<topo::NodeId> current(hosts.begin(), hosts.begin() + 4);
  std::sort(current.begin(), current.end());

  api::ReselectOptions opt;
  opt.max_migrations = 2;
  // Impossible fixed requirement: no host is eligible, selection infeasible.
  opt.selection.min_cpu_fraction = 2.0;
  auto res = api::reselect(ctx, current, opt);
  EXPECT_FALSE(res.feasible);
  EXPECT_TRUE(res.kept_current);
  EXPECT_EQ(res.nodes, current);
  EXPECT_EQ(res.migrations, 0);
  EXPECT_TRUE(res.migrated_in.empty());
  EXPECT_TRUE(res.migrated_out.empty());
  EXPECT_GT(res.objective_before, 0.0);
  EXPECT_DOUBLE_EQ(res.objective_after, res.objective_before);
  EXPECT_NE(res.note.find("keeping"), std::string::npos) << res.note;

  // A reselection that actually ran never reports kept_current.
  api::ReselectOptions ok;
  ok.max_migrations = 2;
  auto solved = api::reselect(ctx, current, ok);
  ASSERT_TRUE(solved.feasible);
  EXPECT_FALSE(solved.kept_current);
}

TEST(Reselect, ScoreMatchesCriterion) {
  select::SetEvaluation ev;
  ev.connected = true;
  ev.min_cpu = 0.25;
  ev.min_pair_bw = 5e6;
  ev.balanced = 0.125;
  EXPECT_DOUBLE_EQ(
      api::criterion_score(select::Criterion::MaxCompute, ev), 0.25);
  EXPECT_DOUBLE_EQ(
      api::criterion_score(select::Criterion::MaxBandwidth, ev), 5e6);
  EXPECT_DOUBLE_EQ(api::criterion_score(select::Criterion::Balanced, ev),
                   0.125);
  ev.connected = false;
  EXPECT_DOUBLE_EQ(api::criterion_score(select::Criterion::Balanced, ev), 0.0);
}

}  // namespace
}  // namespace netsel
