#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace netsel::util {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (auto& x : xs) x = d.sample(rng);
  return xs;
}

double sample_mean(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

TEST(Exponential, MeanMatches) {
  Exponential d(3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  auto xs = draw(d, 50000, 1);
  EXPECT_NEAR(sample_mean(xs), 3.0, 0.1);
}

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Pareto, SamplesAboveScale) {
  Pareto d(1.5, 2.0);
  auto xs = draw(d, 10000, 2);
  EXPECT_GE(*std::min_element(xs.begin(), xs.end()), 2.0);
}

TEST(Pareto, MeanForAlphaAboveOne) {
  Pareto d(2.0, 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);  // alpha*xmin/(alpha-1)
  auto xs = draw(d, 200000, 3);
  EXPECT_NEAR(sample_mean(xs), 2.0, 0.1);
}

TEST(Pareto, InfiniteMeanAtHeavyTail) {
  Pareto d(1.0, 1.0);
  EXPECT_TRUE(std::isinf(d.mean()));
}

TEST(Pareto, TailIsHeavierThanExponential) {
  // P[X > 10 xmin] = 10^-alpha; for alpha=1.1 that is ~0.079, far above the
  // exponential with the same x_min scale.
  Pareto d(1.1, 1.0);
  auto xs = draw(d, 100000, 4);
  double frac = static_cast<double>(
                    std::count_if(xs.begin(), xs.end(),
                                  [](double x) { return x > 10.0; })) /
                static_cast<double>(xs.size());
  EXPECT_NEAR(frac, std::pow(10.0, -1.1), 0.01);
}

TEST(Pareto, RejectsBadParameters) {
  EXPECT_THROW(Pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, 0.0), std::invalid_argument);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  BoundedPareto d(1.05, 2.0, 900.0);
  auto xs = draw(d, 20000, 5);
  EXPECT_GE(*std::min_element(xs.begin(), xs.end()), 2.0);
  EXPECT_LE(*std::max_element(xs.begin(), xs.end()), 900.0);
}

TEST(BoundedPareto, AnalyticMeanMatchesSampleMean) {
  BoundedPareto d(1.05, 2.0, 900.0);
  auto xs = draw(d, 400000, 6);
  EXPECT_NEAR(sample_mean(xs), d.mean(), d.mean() * 0.05);
}

TEST(BoundedPareto, AlphaOneSpecialCase) {
  BoundedPareto d(1.0, 1.0, 100.0);
  // E[X] = ln(100) / (1 - 1/100)
  EXPECT_NEAR(d.mean(), std::log(100.0) / 0.99, 1e-9);
  auto xs = draw(d, 400000, 7);
  EXPECT_NEAR(sample_mean(xs), d.mean(), d.mean() * 0.05);
}

TEST(BoundedPareto, RejectsInvertedBounds) {
  EXPECT_THROW(BoundedPareto(1.0, 10.0, 5.0), std::invalid_argument);
}

TEST(LogNormal, MeanFormula) {
  LogNormal d(1.0, 0.5);
  EXPECT_NEAR(d.mean(), std::exp(1.0 + 0.125), 1e-12);
}

TEST(LogNormal, FromMeanHitsRequestedMean) {
  auto d = LogNormal::from_mean(4e6, 1.2);
  EXPECT_NEAR(d.mean(), 4e6, 1.0);
  auto xs = draw(d, 400000, 8);
  EXPECT_NEAR(sample_mean(xs), 4e6, 4e6 * 0.05);
}

TEST(LogNormal, AllSamplesPositive) {
  auto d = LogNormal::from_mean(10.0, 2.0);
  auto xs = draw(d, 10000, 9);
  EXPECT_GT(*std::min_element(xs.begin(), xs.end()), 0.0);
}

TEST(Mixture, MeanIsWeightedAverage) {
  auto a = std::make_shared<Constant>(2.0);
  auto b = std::make_shared<Constant>(10.0);
  Mixture m(a, b, 0.25);
  EXPECT_DOUBLE_EQ(m.mean(), 0.25 * 2.0 + 0.75 * 10.0);
  auto xs = draw(m, 40000, 10);
  EXPECT_NEAR(sample_mean(xs), 8.0, 0.1);
}

TEST(Mixture, DegenerateWeights) {
  auto a = std::make_shared<Constant>(2.0);
  auto b = std::make_shared<Constant>(10.0);
  Rng rng(11);
  Mixture all_a(a, b, 1.0);
  Mixture all_b(a, b, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(all_a.sample(rng), 2.0);
    EXPECT_DOUBLE_EQ(all_b.sample(rng), 10.0);
  }
}

TEST(Mixture, RejectsBadProbability) {
  auto a = std::make_shared<Constant>(1.0);
  EXPECT_THROW(Mixture(a, a, -0.1), std::invalid_argument);
  EXPECT_THROW(Mixture(a, a, 1.1), std::invalid_argument);
  EXPECT_THROW(Mixture(nullptr, a, 0.5), std::invalid_argument);
}

TEST(Describe, AllDistributionsDescribeThemselves) {
  EXPECT_NE(Exponential(1.0).describe().find("Exponential"), std::string::npos);
  EXPECT_NE(Pareto(1.1, 2.0).describe().find("Pareto"), std::string::npos);
  EXPECT_NE(BoundedPareto(1.1, 2.0, 9.0).describe().find("BoundedPareto"),
            std::string::npos);
  EXPECT_NE(LogNormal(0.0, 1.0).describe().find("LogNormal"),
            std::string::npos);
  EXPECT_NE(Constant(1.0).describe().find("Constant"), std::string::npos);
}

}  // namespace
}  // namespace netsel::util
