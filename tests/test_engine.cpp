#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace netsel::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.step());
}

TEST(Engine, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Engine, FifoWithinSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(Engine, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int count = 0;
  EventId id = sim.schedule_at(1.0, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.cancel(id);           // after fire: no-op
  sim.cancel(id);           // twice: no-op
  sim.cancel(kInvalidEvent);  // invalid: no-op
  EXPECT_FALSE(sim.step());
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(10.0);  // inclusive boundary
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilWithCancelledHead) {
  Simulator sim;
  bool fired = false;
  EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.cancel(a);
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsScheduledDuringExecutionRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Engine, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.run_until(1.0), std::invalid_argument);
}

TEST(Engine, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Engine, ZeroDelayEventFiresAtSameTime) {
  Simulator sim;
  double t = -1.0;
  sim.schedule_at(4.0, [&] {
    sim.schedule_after(0.0, [&] { t = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t, 4.0);
}

}  // namespace
}  // namespace netsel::sim
