#include <gtest/gtest.h>

#include <memory>

#include "exp/table1.hpp"
#include "topo/generators.hpp"

namespace netsel::exp {
namespace {

TEST(Experiment, AppCasesMatchPaperShapes) {
  EXPECT_EQ(fft_case().num_nodes(), 4);
  EXPECT_EQ(airshed_case().num_nodes(), 5);
  EXPECT_EQ(mri_case().num_nodes(), 4);
  EXPECT_EQ(fft_case().name, "FFT (1K)");
}

TEST(Experiment, PolicyNames) {
  EXPECT_STREQ(policy_name(Policy::Random), "random");
  EXPECT_STREQ(policy_name(Policy::AutoBalanced), "auto-balanced");
  EXPECT_STREQ(policy_name(Policy::Static), "static");
}

TEST(Experiment, UnloadedReferencesNearPaper) {
  Scenario idle = table1_scenario(false, false);
  EXPECT_NEAR(run_trial(fft_case(), idle, Policy::AutoBalanced, 1).elapsed,
              48.0, 3.0);
  EXPECT_NEAR(run_trial(airshed_case(), idle, Policy::AutoBalanced, 1).elapsed,
              150.0, 8.0);
  EXPECT_NEAR(run_trial(mri_case(), idle, Policy::AutoBalanced, 1).elapsed,
              540.0, 25.0);
}

TEST(Experiment, TrialsAreDeterministicPerSeed) {
  Scenario s = table1_scenario(true, true);
  auto a = run_trial(fft_case(), s, Policy::Random, 42);
  auto b = run_trial(fft_case(), s, Policy::Random, 42);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.nodes, b.nodes);
  auto c = run_trial(fft_case(), s, Policy::Random, 43);
  EXPECT_NE(a.elapsed, c.elapsed);
}

TEST(Experiment, LoadAndTrafficBothHurt) {
  auto idle = run_trial(fft_case(), table1_scenario(false, false),
                        Policy::Random, 11)
                  .elapsed;
  auto load = run_cell(fft_case(), table1_scenario(true, false),
                       Policy::Random, 5, 11);
  auto traffic = run_cell(fft_case(), table1_scenario(false, true),
                          Policy::Random, 5, 11);
  EXPECT_GT(load.mean(), idle * 1.2);
  EXPECT_GT(traffic.mean(), idle * 1.05);
}

TEST(Experiment, AutoBeatsRandomUnderLoad) {
  // The paper's central claim, in miniature: across a handful of seeds,
  // automatic selection beats random selection under processor load.
  Scenario s = table1_scenario(true, false);
  auto rnd = run_cell(fft_case(), s, Policy::Random, 8, 1000);
  auto aut = run_cell(fft_case(), s, Policy::AutoBalanced, 8, 1000);
  EXPECT_LT(aut.mean(), rnd.mean());
}

TEST(Experiment, AutoBeatsRandomUnderTraffic) {
  Scenario s = table1_scenario(false, true);
  auto rnd = run_cell(airshed_case(), s, Policy::Random, 8, 2000);
  auto aut = run_cell(airshed_case(), s, Policy::AutoBalanced, 8, 2000);
  EXPECT_LT(aut.mean(), rnd.mean());
}

TEST(Experiment, StaticNearRandomOnThisTestbed) {
  // Paper §4.3: "random node selection and node selection based on static
  // network properties give virtually identical performance on a small
  // testbed with all high speed links like ours."
  Scenario s = table1_scenario(true, false);
  auto rnd = run_cell(fft_case(), s, Policy::Random, 10, 3000);
  auto sta = run_cell(fft_case(), s, Policy::Static, 10, 3000);
  // Same ballpark: within 40% of each other (both far from auto's gain
  // would be too strict to assert on small samples).
  EXPECT_LT(std::abs(sta.mean() - rnd.mean()),
            0.4 * std::max(sta.mean(), rnd.mean()));
}

TEST(Experiment, SelectedNodesRecorded) {
  Scenario s = table1_scenario(false, false);
  auto r = run_trial(fft_case(), s, Policy::AutoBalanced, 1);
  EXPECT_EQ(r.nodes.size(), 4u);
}

TEST(Experiment, CellStatisticsAccumulate) {
  Scenario s = table1_scenario(false, false);
  auto stats = run_cell(fft_case(), s, Policy::AutoBalanced, 3, 50);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_GT(stats.mean(), 0.0);
}

TEST(Experiment, AllPoliciesProduceValidTrials) {
  Scenario s = table1_scenario(true, true);
  for (Policy p : {Policy::Random, Policy::Static, Policy::AutoBalanced,
                   Policy::AutoCompute, Policy::AutoBandwidth}) {
    auto r = run_trial(fft_case(), s, p, 9);
    EXPECT_EQ(r.nodes.size(), 4u) << policy_name(p);
    EXPECT_GT(r.elapsed, 40.0) << policy_name(p);
  }
}

TEST(Experiment, MaxSimTimeGuardFires) {
  Scenario s = table1_scenario(false, false);
  s.max_sim_time = s.warmup + 1.0;  // impossible deadline for a 48 s app
  EXPECT_THROW(run_trial(fft_case(), s, Policy::AutoBalanced, 1),
               std::runtime_error);
}

TEST(Experiment, ForecasterOptionIsHonoured) {
  // A custom forecaster that counts queries proves the scenario plumbs it
  // through to the selection-time snapshot.
  struct Counting final : remos::Forecaster {
    mutable int calls = 0;
    double estimate(const remos::TimeSeries& ts, double fallback) const override {
      ++calls;
      return remos::LastValue().estimate(ts, fallback);
    }
    std::string name() const override { return "counting"; }
  };
  auto counting = std::make_shared<Counting>();
  Scenario s = table1_scenario(false, false);
  s.forecaster = counting;
  auto r = run_trial(fft_case(), s, Policy::AutoBalanced, 3);
  EXPECT_GT(counting->calls, 0);
  EXPECT_GT(r.elapsed, 40.0);
}

TEST(Experiment, WarmupAffectsWhatSelectionSees) {
  // With zero warmup the monitor has only the initial idle sweep, so auto
  // selection cannot distinguish nodes and behaves like static selection.
  Scenario s = table1_scenario(true, false);
  s.warmup = 0.0;
  auto blind = run_trial(fft_case(), s, Policy::AutoBalanced, 21);
  auto sighted_s = table1_scenario(true, false);
  auto sighted = run_trial(fft_case(), sighted_s, Policy::AutoBalanced, 21);
  // Both valid runs; the blind one picked the first-by-id tie-break set.
  EXPECT_EQ(blind.nodes.size(), 4u);
  EXPECT_EQ(sighted.nodes.size(), 4u);
  topo::TopologyGraph g = topo::testbed();
  EXPECT_EQ(g.node(blind.nodes[0]).name, "m-1")
      << "no history -> all cpus look equal -> lowest ids win";
}

TEST(Table1, PaperConstantsSanity) {
  ASSERT_EQ(kPaperTable1.size(), 3u);
  EXPECT_DOUBLE_EQ(kPaperTable1[0].reference, 48.0);
  EXPECT_DOUBLE_EQ(kPaperTable1[1].random_sel[kLoadAndTraffic], 530.2);
  EXPECT_DOUBLE_EQ(kPaperTable1[2].auto_sel[kLoadOnly], 594.0);
}

TEST(Table1, MiniPipelineProducesFormattedTables) {
  Table1Options opt;
  opt.trials = 2;
  opt.seed = 7;
  auto rows = run_table1(opt);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_GT(row.reference, 0.0);
    for (int c = 0; c < 3; ++c) {
      EXPECT_GT(row.random_sel[static_cast<std::size_t>(c)].mean, 0.0);
      EXPECT_EQ(row.random_sel[static_cast<std::size_t>(c)].trials, 2);
    }
  }
  auto table = format_table1(rows);
  EXPECT_NE(table.find("FFT (1K)"), std::string::npos);
  EXPECT_NE(table.find("random (paper)"), std::string::npos);
  auto summary = format_slowdown_summary(rows);
  EXPECT_NE(summary.find("reduction"), std::string::npos);
}

}  // namespace
}  // namespace netsel::exp
