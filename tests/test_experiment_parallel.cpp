// Determinism and failure-isolation guarantees of the parallel experiment
// engine: run_cell/run_table1 must produce bit-identical statistics for any
// worker count (reduction is by trial index, not completion order), expected
// per-trial failures must degrade a cell instead of killing the grid, and
// concurrent cells must share no mutable state (this file is the target of
// the ThreadSanitizer CI job).

#include <gtest/gtest.h>

#include <thread>

#include "exp/table1.hpp"
#include "util/thread_pool.hpp"

namespace netsel::exp {
namespace {

void expect_same_stats(const util::OnlineStats& a, const util::OnlineStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());      // bitwise, not near
  EXPECT_EQ(a.stddev(), b.stddev());  // bitwise, not near
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(Seeding, HashedSeedsHaveNoAdjacentCellCollisions) {
  // The old scheme (seed0 + t) made cell seed s, trial t bit-equal to cell
  // seed s + 1, trial t - 1. The hashed derivation must not.
  for (int t = 1; t < 32; ++t) {
    EXPECT_NE(trial_seed(100, t), trial_seed(101, t - 1)) << t;
    EXPECT_NE(trial_seed(100, t), trial_seed(100, t - 1)) << t;
  }
  // Pure function of its inputs.
  EXPECT_EQ(trial_seed(42, 3), trial_seed(42, 3));
  // Any component of the cell identity changes the cell seed.
  auto base = cell_seed(1999, "FFT (1K)", Policy::Random, kLoadOnly);
  EXPECT_EQ(base, cell_seed(1999, "FFT (1K)", Policy::Random, kLoadOnly));
  EXPECT_NE(base, cell_seed(1999, "FFT (1K)", Policy::Random, kTrafficOnly));
  EXPECT_NE(base, cell_seed(1999, "FFT (1K)", Policy::AutoBalanced, kLoadOnly));
  EXPECT_NE(base, cell_seed(1999, "Airshed", Policy::Random, kLoadOnly));
  EXPECT_NE(base, cell_seed(2000, "FFT (1K)", Policy::Random, kLoadOnly));
}

TEST(ParallelExperiment, RunCellBitIdenticalAcrossThreadCounts) {
  Scenario s = table1_scenario(true, false);
  CellResult serial = run_cell(fft_case(), s, Policy::Random, 6, 77);
  util::ThreadPool one(1);
  util::ThreadPool eight(8);
  CellResult p1 = run_cell(fft_case(), s, Policy::Random, 6, 77, &one);
  CellResult p8 = run_cell(fft_case(), s, Policy::Random, 6, 77, &eight);
  ASSERT_EQ(serial.stats.count(), 6u);
  expect_same_stats(serial.stats, p1.stats);
  expect_same_stats(serial.stats, p8.stats);
  EXPECT_EQ(serial.attempted, p8.attempted);
  EXPECT_EQ(serial.failures, p8.failures);
}

TEST(ParallelExperiment, Table1BitIdenticalAcrossThreadCounts) {
  Table1Options opt;
  opt.trials = 2;
  opt.seed = 7;
  auto serial = run_table1(opt);
  opt.threads = 3;
  auto pooled = run_table1(opt);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].app, pooled[r].app);
    EXPECT_EQ(serial[r].reference, pooled[r].reference);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(serial[r].random_sel[c].mean, pooled[r].random_sel[c].mean);
      EXPECT_EQ(serial[r].random_sel[c].ci95, pooled[r].random_sel[c].ci95);
      EXPECT_EQ(serial[r].random_sel[c].trials, pooled[r].random_sel[c].trials);
      EXPECT_EQ(serial[r].auto_sel[c].mean, pooled[r].auto_sel[c].mean);
      EXPECT_EQ(serial[r].auto_sel[c].ci95, pooled[r].auto_sel[c].ci95);
      EXPECT_EQ(serial[r].auto_sel[c].trials, pooled[r].auto_sel[c].trials);
    }
  }
}

TEST(ParallelExperiment, FailedTrialDegradesCellInsteadOfThrowing) {
  Scenario s = table1_scenario(true, false);
  CellResult base = run_cell(fft_case(), s, Policy::Random, 6, 123);
  ASSERT_EQ(base.failures, 0);
  ASSERT_LT(base.stats.min(), base.stats.max());

  // Cap the simulation clock between the fastest and slowest trial: the
  // slow trials now abort, the fast ones survive, the cell degrades.
  Scenario capped = s;
  capped.max_sim_time =
      s.warmup + (base.stats.min() + base.stats.max()) / 2.0;
  CellResult cell = run_cell(fft_case(), capped, Policy::Random, 6, 123);
  EXPECT_GT(cell.failures, 0);
  EXPECT_GT(cell.stats.count(), 0u);
  EXPECT_EQ(cell.attempted, 6);
  EXPECT_EQ(static_cast<int>(cell.stats.count()) + cell.failures, 6);
  ASSERT_FALSE(cell.failure_notes.empty());
  EXPECT_NE(cell.failure_notes[0].find("max_sim_time"), std::string::npos);

  // Identical degradation under a pool — failures are part of the
  // deterministic result, not a scheduling artifact.
  util::ThreadPool pool(4);
  CellResult pooled = run_cell(fft_case(), capped, Policy::Random, 6, 123, &pool);
  EXPECT_EQ(pooled.failures, cell.failures);
  expect_same_stats(pooled.stats, cell.stats);
}

TEST(ParallelExperiment, ConcurrentCellsAreIsolated) {
  // Two whole cells on two plain threads, each against its own NetworkSim,
  // Rng and SelectionContext. Run under TSan in CI; also asserts the
  // concurrent results equal the single-threaded reference ones.
  Scenario load = table1_scenario(true, false);
  Scenario traffic = table1_scenario(false, true);
  CellResult ref_a = run_cell(fft_case(), load, Policy::AutoBalanced, 3, 7);
  CellResult ref_b = run_cell(fft_case(), traffic, Policy::Random, 3, 9);

  CellResult a, b;
  std::thread ta(
      [&] { a = run_cell(fft_case(), load, Policy::AutoBalanced, 3, 7); });
  std::thread tb(
      [&] { b = run_cell(fft_case(), traffic, Policy::Random, 3, 9); });
  ta.join();
  tb.join();
  expect_same_stats(a.stats, ref_a.stats);
  expect_same_stats(b.stats, ref_b.stats);
}

}  // namespace
}  // namespace netsel::exp
