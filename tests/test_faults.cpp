#include "remos/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "api/service.hpp"
#include "exp/faults.hpp"
#include "remos/remos.hpp"
#include "topo/generators.hpp"

namespace netsel::remos {
namespace {

TEST(FaultPlan_, DefaultIsFaultFree) {
  FaultPlan p;
  EXPECT_FALSE(p.any());
  EXPECT_NO_THROW(p.validate());
}

TEST(FaultPlan_, AnyFlipsPerProcess) {
  FaultPlan p;
  p.p_sweep_drop = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.p_node_fail = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.p_link_fail = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.noise_sigma = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.p_sweep_delay = 0.1;
  p.max_sweep_delay = 1.0;
  EXPECT_TRUE(p.any());
}

TEST(FaultPlan_, ValidateRejectsBadKnobs) {
  FaultPlan p;
  p.p_sweep_drop = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FaultPlan{};
  p.noise_sigma = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // A delay process needs a positive delay bound.
  p = FaultPlan{};
  p.p_sweep_delay = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // An outage process with no repair would down sensors forever.
  p = FaultPlan{};
  p.p_node_fail = 0.5;
  p.p_node_repair = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = FaultPlan{};
  p.p_link_fail = 0.5;
  p.p_link_repair = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(FaultPlan_, ScaledSeverity) {
  EXPECT_FALSE(FaultPlan::scaled(0.0, 1).any());
  FaultPlan half = FaultPlan::scaled(0.5, 1);
  FaultPlan full = FaultPlan::scaled(1.0, 1);
  EXPECT_TRUE(half.any());
  EXPECT_NO_THROW(half.validate());
  EXPECT_NO_THROW(full.validate());
  EXPECT_LT(half.p_sweep_drop, full.p_sweep_drop);
  EXPECT_LT(half.p_node_fail, full.p_node_fail);
  EXPECT_LT(half.noise_sigma, full.noise_sigma);
  EXPECT_THROW(FaultPlan::scaled(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan::scaled(1.1, 1), std::invalid_argument);
}

TEST(FaultInjectorTest, DeterministicReplay) {
  FaultPlan p = FaultPlan::scaled(0.7, 42);
  FaultInjector a(p, 8, 20);
  FaultInjector b(p, 8, 20);
  for (int s = 0; s < 50; ++s) {
    a.begin_sweep();
    b.begin_sweep();
    EXPECT_EQ(a.sweep_dropped(), b.sweep_dropped()) << "sweep " << s;
    for (std::size_t n = 0; n < 8; ++n)
      EXPECT_EQ(a.node_down(n), b.node_down(n)) << "sweep " << s;
    for (std::size_t l = 0; l < 20; ++l)
      EXPECT_EQ(a.link_down(l), b.link_down(l)) << "sweep " << s;
    EXPECT_DOUBLE_EQ(a.perturb(3.5), b.perturb(3.5));
    EXPECT_DOUBLE_EQ(a.draw_delay(), b.draw_delay());
  }
  EXPECT_EQ(a.sweeps_begun(), 50u);
}

TEST(FaultInjectorTest, CertainOutageAlternates) {
  // p_fail = p_repair = 1 makes the two-state chain deterministic: the
  // first advance downs every sensor, the second repairs it, and so on.
  FaultPlan p;
  p.p_node_fail = 1.0;
  p.p_node_repair = 1.0;
  FaultInjector inj(p, 3, 4);
  inj.begin_sweep();
  EXPECT_TRUE(inj.node_down(0));
  EXPECT_TRUE(inj.node_down(2));
  EXPECT_FALSE(inj.link_down(0));  // link process inactive
  inj.begin_sweep();
  EXPECT_FALSE(inj.node_down(0));
  inj.begin_sweep();
  EXPECT_TRUE(inj.node_down(0));
}

TEST(FaultInjectorTest, PerturbIsIdentityWithoutNoise) {
  FaultPlan p;
  p.p_sweep_drop = 0.5;  // any() true, but no noise process
  FaultInjector inj(p, 1, 1);
  EXPECT_DOUBLE_EQ(inj.perturb(7.25), 7.25);
  EXPECT_DOUBLE_EQ(inj.draw_delay(), 0.0);
}

struct FaultMonitorFixture : ::testing::Test {
  sim::NetworkSim net{topo::testbed()};
  topo::NodeId m1 = net.topology().find_node("m-1").value();
  topo::NodeId m13 = net.topology().find_node("m-13").value();
};

TEST_F(FaultMonitorFixture, NoFaultPlanBuildsNoInjector) {
  Remos remos(net, MonitorConfig{2.0, 30.0, {}});
  EXPECT_EQ(remos.monitor().fault_injector(), nullptr);
  FaultPlan p;
  p.noise_sigma = 0.1;
  Remos faulty(net, MonitorConfig{2.0, 30.0, p});
  EXPECT_NE(faulty.monitor().fault_injector(), nullptr);
}

TEST_F(FaultMonitorFixture, InvalidPlanRejectedAtConstruction) {
  FaultPlan p;
  p.p_sweep_drop = 2.0;
  EXPECT_THROW(Monitor(net, MonitorConfig{2.0, 30.0, p}),
               std::invalid_argument);
}

TEST_F(FaultMonitorFixture, DroppedSweepsRecordNothing) {
  FaultPlan p;
  p.seed = 9;
  p.p_sweep_drop = 1.0;
  Remos remos(net, MonitorConfig{2.0, 30.0, p});
  remos.start();
  net.sim().run_until(10.0);
  EXPECT_EQ(remos.monitor().polls_completed(), 0u);
  EXPECT_EQ(remos.monitor().sweeps_dropped(), 6u);  // t = 0, 2, ..., 10
  EXPECT_TRUE(remos.monitor().load_history(m1).empty());
}

TEST_F(FaultMonitorFixture, NodeOutageStallsItsSeriesOnly) {
  // Deterministic alternating outage: node sensors record on every second
  // sweep, link sensors on all of them.
  FaultPlan p;
  p.seed = 9;
  p.p_node_fail = 1.0;
  p.p_node_repair = 1.0;
  Remos remos(net, MonitorConfig{2.0, 30.0, p});
  remos.start();
  net.sim().run_until(10.0);
  const Monitor& mon = remos.monitor();
  EXPECT_EQ(mon.polls_completed(), 6u);
  // Down at t=0,4,8; up at t=2,6,10.
  EXPECT_EQ(mon.load_history(m1).size(), 3u);
  EXPECT_EQ(mon.link_history(0, true).size(), 6u);
  EXPECT_GT(mon.samples_dropped(), 0u);
}

TEST_F(FaultMonitorFixture, NoiseKeepsExactZerosAndPerturbsTraffic) {
  FaultPlan p;
  p.seed = 11;
  p.noise_sigma = 0.3;
  net.network().start_flow(m1, m13, 1e12, sim::kBackgroundOwner);
  Remos remos(net, MonitorConfig{2.0, 30.0, p});
  remos.start();
  net.sim().run_until(4.0);
  const Monitor& mon = remos.monitor();
  // Idle sensors stay exactly zero (lognormal noise is multiplicative).
  EXPECT_DOUBLE_EQ(mon.load_history(m1).latest().value, 0.0);
  // The loaded route direction measures ~100 Mbps but never exactly
  // (route[0] may be traversed in either direction of its link).
  auto route = net.routes().route(m1, m13);
  double used = std::max(mon.link_history(route[0], true).latest().value,
                         mon.link_history(route[0], false).latest().value);
  EXPECT_GT(used, 0.0);
  EXPECT_NE(used, 100e6);
}

TEST_F(FaultMonitorFixture, DelayedSweepsStretchTheCadence) {
  FaultPlan p;
  p.seed = 13;
  p.p_sweep_delay = 1.0;
  p.max_sweep_delay = 4.0;
  Remos remos(net, MonitorConfig{2.0, 30.0, p});
  remos.start();
  net.sim().run_until(20.0);
  // Every gap is in (2, 6]: strictly fewer polls than the 11 an on-time
  // poller completes by t=20, but the poller never stalls outright.
  EXPECT_LT(remos.monitor().polls_completed(), 11u);
  EXPECT_GE(remos.monitor().polls_completed(), 4u);
}

}  // namespace
}  // namespace netsel::remos

namespace netsel::api {
namespace {

struct LadderFixture : ::testing::Test {
  sim::NetworkSim net{topo::testbed()};
  remos::Remos remos{net};
  NodeSelectionService service{remos};
};

TEST_F(LadderFixture, FullWhenMeasurementsAreFresh) {
  remos.start();
  net.sim().run_until(10.0);
  DegradationLevel level = DegradationLevel::Prior;
  remos::QueryQuality quality;
  auto snap = service.degraded_snapshot({}, {}, level, quality);
  EXPECT_EQ(level, DegradationLevel::Full);
  EXPECT_DOUBLE_EQ(quality.coverage(), 1.0);
  // Full is the probe snapshot itself: identical to a plain query.
  auto direct = remos.snapshot();
  auto m1 = net.topology().find_node("m-1").value();
  EXPECT_DOUBLE_EQ(snap.cpu(m1), direct.cpu(m1));
  EXPECT_DOUBLE_EQ(snap.bw(0), direct.bw(0));
}

TEST_F(LadderFixture, PriorWhenMonitorNeverPolled) {
  // No remos.start(): every series is empty, coverage is 0, and selection
  // must still succeed on the capacity/zero-load prior.
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  auto snap = service.degraded_snapshot({}, {}, level, quality);
  EXPECT_EQ(level, DegradationLevel::Prior);
  EXPECT_DOUBLE_EQ(quality.coverage(), 0.0);
  auto m1 = net.topology().find_node("m-1").value();
  EXPECT_DOUBLE_EQ(snap.cpu(m1), 1.0);
  EXPECT_DOUBLE_EQ(snap.bw(0), snap.maxbw(0));

  AppSpec spec = AppSpec::spmd("t", 4, AppPattern::LooselySynchronous);
  Placement placement = service.place(spec);
  EXPECT_TRUE(placement.feasible);
  EXPECT_EQ(placement.degradation, DegradationLevel::Prior);
  EXPECT_DOUBLE_EQ(placement.measurement_coverage, 0.0);
  EXPECT_EQ(placement.flat().size(), 4u);
}

TEST_F(LadderFixture, StoppedMonitorAgesIntoPrior) {
  remos.start();
  net.sim().run_until(10.0);
  remos.monitor().stop();
  net.sim().run_until(60.0);  // newest sample now 50 s old, window is 30 s
  DegradationLevel level = DegradationLevel::Full;
  remos::QueryQuality quality;
  service.degraded_snapshot({}, {}, level, quality);
  EXPECT_EQ(level, DegradationLevel::Prior);
  EXPECT_DOUBLE_EQ(quality.coverage(), 0.0);
  EXPECT_GT(quality.newest_age, 30.0);
}

TEST_F(LadderFixture, ThresholdsForceEachLevel) {
  remos.start();
  net.sim().run_until(10.0);
  remos::QueryQuality quality;
  DegradationLevel level;

  DegradationPolicy smoothed;
  smoothed.smoothed_below = 1.1;  // coverage <= 1 always degrades
  smoothed.prior_below = 0.5;
  service.degraded_snapshot({}, smoothed, level, quality);
  EXPECT_EQ(level, DegradationLevel::Smoothed);

  DegradationPolicy prior;
  prior.smoothed_below = 1.2;
  prior.prior_below = 1.1;
  service.degraded_snapshot({}, prior, level, quality);
  EXPECT_EQ(level, DegradationLevel::Prior);
}

TEST_F(LadderFixture, RejectsInvertedThresholds) {
  DegradationPolicy bad;
  bad.smoothed_below = 0.3;
  bad.prior_below = 0.8;
  DegradationLevel level;
  remos::QueryQuality quality;
  EXPECT_THROW(service.degraded_snapshot({}, bad, level, quality),
               std::invalid_argument);
}

TEST_F(LadderFixture, PlaceRecordsForcedDegradation) {
  remos.start();
  net.sim().run_until(10.0);
  ServiceOptions opt;
  opt.degradation.smoothed_below = 1.1;
  Placement placement =
      service.place(AppSpec::spmd("t", 4, AppPattern::LooselySynchronous), opt);
  EXPECT_TRUE(placement.feasible);
  EXPECT_EQ(placement.degradation, DegradationLevel::Smoothed);
  EXPECT_DOUBLE_EQ(placement.measurement_coverage, 1.0);
}

TEST_F(LadderFixture, SelectAnnotatesDegradedResults) {
  // Dead monitor: select() falls back to the prior and says so in the note.
  auto result = service.select(4, select::Criterion::Balanced);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.nodes.size(), 4u);
  EXPECT_NE(result.note.find("degraded: prior"), std::string::npos);

  // Warm monitor: no annotation on the Full path.
  remos.start();
  net.sim().run_until(10.0);
  auto fresh = service.select(4, select::Criterion::Balanced);
  EXPECT_EQ(fresh.note.find("degraded"), std::string::npos);
}

TEST_F(LadderFixture, SelectionNeverThrowsUnderHeavyFaults) {
  // A separate testbed with a severity-1 measurement plane: the service
  // must place every request without throwing, whatever the sensors did.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    sim::NetworkSim fnet{topo::testbed()};
    remos::MonitorConfig cfg;
    cfg.faults = remos::FaultPlan::scaled(1.0, seed, cfg.poll_interval);
    remos::Remos fremos(fnet, cfg);
    fremos.start();
    fnet.sim().run_until(40.0);
    NodeSelectionService fservice(fremos);
    Placement placement = fservice.place(
        AppSpec::spmd("t", 4, AppPattern::LooselySynchronous));
    EXPECT_TRUE(placement.feasible) << "seed " << seed;
    EXPECT_EQ(placement.flat().size(), 4u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace netsel::api

namespace netsel::exp {
namespace {

TEST(FaultGrid, SeverityZeroIsBitIdenticalToRunTrial) {
  // The no-fault contract: at severity 0 the fault path must reproduce
  // run_trial's elapsed time bit-for-bit — for the random control arm and
  // for an auto policy routed through the selection service.
  const AppCase app = fft_case();
  const Scenario sc = table1_scenario(true, true);
  for (Policy policy : {Policy::Random, Policy::AutoBalanced}) {
    for (int t = 0; t < 2; ++t) {
      std::uint64_t seed = trial_seed(cell_seed(501, app.name, policy, 0), t);
      double direct = run_trial(app, sc, policy, seed).elapsed;
      FaultTrialResult faulted = run_fault_trial(app, sc, policy, 0.0, seed);
      EXPECT_EQ(direct, faulted.elapsed)
          << policy_name(policy) << " trial " << t;
      EXPECT_EQ(faulted.degradation, api::DegradationLevel::Full);
      EXPECT_DOUBLE_EQ(faulted.coverage, 1.0);
    }
  }
}

TEST(FaultGrid, PooledGridMatchesSerial) {
  FaultGridOptions opt;
  opt.trials = 2;
  opt.seed = 77;
  opt.severities = {0.0, 0.4};
  opt.criteria = {Policy::AutoBalanced};

  opt.threads = 0;
  auto serial = run_fault_grid(opt);
  opt.threads = 2;
  auto pooled = run_fault_grid(opt);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_DOUBLE_EQ(serial[r].severity, pooled[r].severity);
    auto same = [&](const FaultCell& a, const FaultCell& b) {
      EXPECT_EQ(a.cell.count(), b.cell.count());
      EXPECT_EQ(a.cell.failures, b.cell.failures);
      EXPECT_EQ(a.cell.stats.mean(), b.cell.stats.mean());
      EXPECT_EQ(a.degraded_smoothed, b.degraded_smoothed);
      EXPECT_EQ(a.degraded_prior, b.degraded_prior);
    };
    same(serial[r].random, pooled[r].random);
    ASSERT_EQ(serial[r].autos.size(), pooled[r].autos.size());
    for (std::size_t k = 0; k < serial[r].autos.size(); ++k)
      same(serial[r].autos[k], pooled[r].autos[k]);
  }
}

TEST(FaultGrid, FormattersCoverEveryCell) {
  FaultGridOptions opt;
  opt.trials = 1;
  opt.seed = 77;
  opt.severities = {0.0};
  opt.criteria = {Policy::AutoBalanced};
  auto rows = run_fault_grid(opt);
  std::string table = format_fault_grid(rows, opt);
  EXPECT_NE(table.find("random"), std::string::npos);
  EXPECT_NE(table.find("auto-balanced"), std::string::npos);
  std::string csv = fault_grid_csv(rows, opt);
  EXPECT_NE(csv.find("severity"), std::string::npos);
  EXPECT_NE(csv.find("auto-balanced"), std::string::npos);
}

}  // namespace
}  // namespace netsel::exp
