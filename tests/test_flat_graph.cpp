// Tests for the flat-arena graph view and the batched multi-source
// bottleneck kernel (topo/flat_graph.hpp).
//
// The batched kernel's contract is *bit-identity* to the scalar
// bottleneck_row — every field, including the BFS tree links and the FIFO
// discovery order the SelectionContext delta-repair path replays — with a
// transparent scalar fallback for sources whose discovery order the
// word-parallel sweep cannot reproduce. The fuzz oracle therefore compares
// whole rows across every synthetic family, on fresh and weight-patched
// arenas, and through SelectionContext::warm_rows at several thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/context.hpp"
#include "topo/connectivity.hpp"
#include "topo/flat_graph.hpp"
#include "topo/synthetic.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netsel::topo {
namespace {

struct Instance {
  std::string what;
  std::unique_ptr<TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

/// One instance per generator family, with seeded loads so the two weight
/// arrays are heterogeneous.
std::vector<Instance> instances(std::uint64_t seed) {
  std::vector<Instance> out;
  {
    Instance inst;
    inst.what = "fat_tree seed " + std::to_string(seed);
    auto ft = fat_tree_for_hosts(48, 8, 2.0, seed);
    ft.cpu_jitter = 0.2;
    inst.graph = std::make_unique<TopologyGraph>(fat_tree(ft));
    out.push_back(std::move(inst));
  }
  {
    Instance inst;
    inst.what = "three_level_fat_tree seed " + std::to_string(seed);
    ThreeLevelFatTreeOptions tl;
    tl.pods = 3;
    tl.edge_per_pod = 3;
    tl.hosts_per_edge = 4;
    tl.agg_per_pod = 2;
    tl.seed = seed;
    inst.graph = std::make_unique<TopologyGraph>(three_level_fat_tree(tl));
    out.push_back(std::move(inst));
  }
  {
    Instance inst;
    inst.what = "campus_wan seed " + std::to_string(seed);
    CampusWanOptions cw;
    cw.campuses = 3;
    cw.buildings_per_campus = 2;
    cw.hosts_per_building = 4;
    cw.seed = seed;
    inst.graph = std::make_unique<TopologyGraph>(campus_wan(cw));
    out.push_back(std::move(inst));
  }
  {
    Instance inst;
    inst.what = "random_core_edge seed " + std::to_string(seed);
    RandomCoreEdgeOptions ce;
    ce.core_switches = 5;
    ce.edge_switches = 9;
    ce.hosts = 40;
    ce.seed = seed;
    inst.graph = std::make_unique<TopologyGraph>(random_core_edge(ce));
    out.push_back(std::move(inst));
  }
  for (auto& inst : out) {
    inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
    remos::apply_synthetic_load(*inst.snap, seed * 131 + 17);
  }
  return out;
}

std::vector<double> bw_of(const remos::NetworkSnapshot& snap) {
  std::vector<double> bw(snap.graph().link_count());
  for (std::size_t l = 0; l < bw.size(); ++l)
    bw[l] = snap.bw(static_cast<LinkId>(l));
  return bw;
}

std::vector<double> bwfactor_of(const remos::NetworkSnapshot& snap) {
  std::vector<double> f(snap.graph().link_count());
  for (std::size_t l = 0; l < f.size(); ++l)
    f[l] = snap.bwfactor(static_cast<LinkId>(l));
  return f;
}

void expect_rows_identical(const BottleneckRow& got, const BottleneckRow& want,
                           const std::string& what) {
  EXPECT_EQ(got.bottleneck, want.bottleneck) << what;
  EXPECT_EQ(got.bottleneck2, want.bottleneck2) << what;
  EXPECT_EQ(got.latency, want.latency) << what;
  EXPECT_EQ(got.reached, want.reached) << what;
  EXPECT_EQ(got.tree_link, want.tree_link) << what;
  EXPECT_EQ(got.order, want.order) << what;
}

TEST(FlatGraph, SectionsMatchCsrAndGraph) {
  for (const auto& inst : instances(1)) {
    const auto adj = CsrAdjacency::build(*inst.graph);
    const auto bw = bw_of(*inst.snap);
    const auto f = bwfactor_of(*inst.snap);
    const FlatGraph g = FlatGraph::build(adj, bw, f);
    ASSERT_EQ(g.node_count(), adj.node_count()) << inst.what;
    ASSERT_EQ(g.link_count(), adj.link_count()) << inst.what;
    EXPECT_GT(g.arena_bytes(), 0u) << inst.what;
    EXPECT_TRUE(std::equal(g.row_start().begin(), g.row_start().end(),
                           adj.row_start.begin(), adj.row_start.end()))
        << inst.what;
    EXPECT_TRUE(std::equal(g.neighbor().begin(), g.neighbor().end(),
                           adj.neighbor.begin(), adj.neighbor.end()))
        << inst.what;
    EXPECT_TRUE(std::equal(g.via().begin(), g.via().end(), adj.via.begin(),
                           adj.via.end()))
        << inst.what;
    EXPECT_TRUE(std::equal(g.link_latency().begin(), g.link_latency().end(),
                           adj.link_latency.begin(), adj.link_latency.end()))
        << inst.what;
    EXPECT_TRUE(std::equal(g.is_compute().begin(), g.is_compute().end(),
                           adj.is_compute.begin(), adj.is_compute.end()))
        << inst.what;
    EXPECT_TRUE(std::equal(g.link_bw().begin(), g.link_bw().end(), bw.begin(),
                           bw.end()))
        << inst.what;
    EXPECT_TRUE(std::equal(g.link_bwfactor().begin(), g.link_bwfactor().end(),
                           f.begin(), f.end()))
        << inst.what;
  }
}

TEST(FlatGraph, WeightPatchInPlace) {
  const auto inst = std::move(instances(2)[0]);
  const auto adj = CsrAdjacency::build(*inst.graph);
  auto bw = bw_of(*inst.snap);
  auto f = bwfactor_of(*inst.snap);
  FlatGraph g = FlatGraph::build(adj, bw, f);
  const auto l = static_cast<LinkId>(3);
  g.set_link_bw(l, 12345.0);
  g.set_link_bwfactor(l, 0.125);
  EXPECT_EQ(g.link_bw()[3], 12345.0);
  EXPECT_EQ(g.link_bwfactor()[3], 0.125);
  // Structure untouched.
  EXPECT_TRUE(std::equal(g.neighbor().begin(), g.neighbor().end(),
                         adj.neighbor.begin(), adj.neighbor.end()));
}

TEST(FlatGraph, ScalarKernelMatchesCsrKernel) {
  for (const auto& inst : instances(3)) {
    const auto adj = CsrAdjacency::build(*inst.graph);
    const auto bw = bw_of(*inst.snap);
    const auto f = bwfactor_of(*inst.snap);
    const FlatGraph g = FlatGraph::build(adj, bw, f);
    for (std::size_t n = 0; n < g.node_count(); ++n) {
      const auto src = static_cast<NodeId>(n);
      expect_rows_identical(bottleneck_row(g, src),
                            bottleneck_row(adj, src, bw, f),
                            inst.what + " src " + std::to_string(n));
    }
  }
}

TEST(FlatGraph, BatchedMatchesScalarFuzz) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const auto& inst : instances(seed)) {
      const auto adj = CsrAdjacency::build(*inst.graph);
      const auto bw = bw_of(*inst.snap);
      const auto f = bwfactor_of(*inst.snap);
      const FlatGraph g = FlatGraph::build(adj, bw, f);
      util::Rng rng(seed * 977 + 5);
      const auto n = static_cast<std::int64_t>(g.node_count());
      // Random batch widths, including the full 64 and width 1; sources mix
      // hosts and switches and may repeat (duplicates must not interfere).
      for (int round = 0; round < 6; ++round) {
        const std::size_t w = static_cast<std::size_t>(
            round == 0 ? 64 : round == 1 ? 1 : rng.uniform_int(2, 64));
        std::vector<NodeId> sources;
        sources.reserve(w);
        for (std::size_t i = 0; i < w; ++i)
          sources.push_back(
              static_cast<NodeId>(rng.uniform_int(0, n - 1)));
        std::vector<BottleneckRow> rows(w);
        BatchStats st;
        batched_bottleneck_rows(g, sources, rows, &st);
        EXPECT_EQ(st.batched_rows + st.scalar_fallback_rows, w)
            << inst.what << " round " << round;
        for (std::size_t i = 0; i < w; ++i)
          expect_rows_identical(
              rows[i], bottleneck_row(adj, sources[i], bw, f),
              inst.what + " round " + std::to_string(round) + " lane " +
                  std::to_string(i));
      }
    }
  }
}

TEST(FlatGraph, BatchedMatchesScalarAfterWeightPatches) {
  for (const auto& inst : instances(5)) {
    const auto adj = CsrAdjacency::build(*inst.graph);
    auto bw = bw_of(*inst.snap);
    auto f = bwfactor_of(*inst.snap);
    FlatGraph g = FlatGraph::build(adj, bw, f);
    // Patch a third of the links in place, mirroring the delta path, and
    // keep the reference arrays in sync.
    util::Rng rng(404);
    for (std::size_t l = 0; l < bw.size(); l += 3) {
      const double nb = bw[l] * rng.uniform(0.25, 1.5);
      const double nf = f[l] * 0.5;
      bw[l] = nb;
      f[l] = nf;
      g.set_link_bw(static_cast<LinkId>(l), nb);
      g.set_link_bwfactor(static_cast<LinkId>(l), nf);
    }
    std::vector<NodeId> sources;
    for (std::size_t i = 0; i < g.node_count(); i += 2)
      sources.push_back(static_cast<NodeId>(i));
    if (sources.size() > 64) sources.resize(64);
    std::vector<BottleneckRow> rows(sources.size());
    batched_bottleneck_rows(g, sources, rows);
    for (std::size_t i = 0; i < sources.size(); ++i)
      expect_rows_identical(rows[i],
                            bottleneck_row(adj, sources[i], bw, f),
                            inst.what + " patched lane " + std::to_string(i));
  }
}

TEST(FlatGraph, BatchedArgumentChecks) {
  const auto inst = std::move(instances(6)[0]);
  const auto adj = CsrAdjacency::build(*inst.graph);
  const auto bw = bw_of(*inst.snap);
  const auto f = bwfactor_of(*inst.snap);
  const FlatGraph g = FlatGraph::build(adj, bw, f);
  std::vector<NodeId> too_many(65, 0);
  std::vector<BottleneckRow> out65(65);
  EXPECT_THROW(batched_bottleneck_rows(g, too_many, out65),
               std::invalid_argument);
  std::vector<NodeId> two(2, 0);
  std::vector<BottleneckRow> out1(1);
  EXPECT_THROW(batched_bottleneck_rows(g, two, out1), std::invalid_argument);
  std::vector<NodeId> bad{static_cast<NodeId>(g.node_count())};
  std::vector<BottleneckRow> outb(1);
  EXPECT_THROW(batched_bottleneck_rows(g, bad, outb), std::invalid_argument);
  std::vector<NodeId> none;
  std::vector<BottleneckRow> outn;
  batched_bottleneck_rows(g, none, outn);  // width 0 is a no-op
}

/// warm_rows end-to-end: the batched path behind SelectionContext, after
/// live snapshot deltas (so the arena weight patches are exercised), must
/// reproduce the TopologyGraph reference kernel at every thread count.
TEST(FlatGraph, ContextWarmRowsBitIdenticalAcrossThreadCountsAndDeltas) {
  for (const auto& inst : instances(7)) {
    auto& snap = *inst.snap;
    select::SelectionContext ctx(snap);
    // Touch the caches, then mutate the snapshot so warm_rows runs on a
    // delta-patched arena rather than a fresh build.
    (void)ctx.flat();
    util::Rng rng(11);
    for (std::size_t l = 0; l < snap.graph().link_count(); l += 4)
      snap.set_bw(static_cast<LinkId>(l),
                  snap.bw(static_cast<LinkId>(l)) * rng.uniform(0.3, 1.2));
    std::vector<NodeId> sources;
    for (std::size_t i = 0; i < snap.graph().node_count(); ++i)
      sources.push_back(static_cast<NodeId>(i));
    const auto bw = bw_of(snap);
    const auto f = bwfactor_of(snap);
    for (int workers : {0, 2, 4}) {
      select::SelectionContext warm_ctx(snap);
      util::ThreadPool pool(workers);
      warm_ctx.warm_rows(pool, sources);
      EXPECT_GT(warm_ctx.arena_bytes(), 0u) << inst.what;
      for (NodeId src : sources) {
        const auto want = bottleneck_row(snap.graph(), src, bw, f);
        expect_rows_identical(warm_ctx.pair_row(src), want,
                              inst.what + " workers " +
                                  std::to_string(workers) + " src " +
                                  std::to_string(src));
      }
    }
  }
}

}  // namespace
}  // namespace netsel::topo
