// Tests for the extended forecaster suite (beyond the paper's last-value
// choice): conservative window-max, least-squares linear trend, and the
// NWS-style adaptive selector (the paper's reference [26] picks predictors
// by their track record).

#include <gtest/gtest.h>

#include "remos/history.hpp"
#include "util/rng.hpp"

namespace netsel::remos {
namespace {

TimeSeries ramp(double slope, int n, double dt = 1.0, double start = 0.0) {
  TimeSeries ts(1e9);
  for (int i = 0; i < n; ++i)
    ts.record(i * dt, start + slope * i * dt);
  return ts;
}

TEST(WindowMaxF, ReturnsWindowMaximum) {
  TimeSeries ts(100.0);
  WindowMax f;
  EXPECT_DOUBLE_EQ(f.estimate(ts, 7.0), 7.0);
  ts.record(0.0, 2.0);
  ts.record(1.0, 9.0);
  ts.record(2.0, 4.0);
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 9.0);
}

TEST(WindowMaxF, ForgetsOutsideWindow) {
  TimeSeries ts(5.0);
  WindowMax f;
  ts.record(0.0, 100.0);
  ts.record(10.0, 1.0);  // trims the old peak
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 1.0);
}

TEST(LinearTrendF, ExtrapolatesARamp) {
  auto ts = ramp(2.0, 10);  // value = 2t, latest at t=9 -> 18
  LinearTrend now(0.0);
  EXPECT_NEAR(now.estimate(ts, 0.0), 18.0, 1e-9);
  LinearTrend ahead(3.0);
  EXPECT_NEAR(ahead.estimate(ts, 0.0), 24.0, 1e-9);
}

TEST(LinearTrendF, ClampsAtZero) {
  auto ts = ramp(-1.0, 5, 1.0, 3.0);  // falls through zero
  LinearTrend ahead(10.0);
  EXPECT_DOUBLE_EQ(ahead.estimate(ts, 0.0), 0.0);
}

TEST(LinearTrendF, DegenerateCases) {
  TimeSeries ts(100.0);
  LinearTrend f(1.0);
  EXPECT_DOUBLE_EQ(f.estimate(ts, 5.0), 5.0);  // empty -> fallback
  ts.record(3.0, 2.5);
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 2.5);  // single sample -> last
  ts.record(3.0, 7.5);                          // same timestamp
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 7.5);  // degenerate denom -> last
  EXPECT_THROW(LinearTrend(-1.0), std::invalid_argument);
}

TEST(AdaptiveF, PicksTrendOnARamp) {
  Adaptive f;
  auto ts = ramp(1.5, 12);
  // Candidate order: last-value, window-mean, ewma, linear-trend.
  EXPECT_EQ(f.best_candidate(ts), 3u);
  // One-step-ahead trend: predicts the next sample, t=12 -> 18.
  EXPECT_NEAR(f.estimate(ts, 0.0), 1.5 * 12.0, 1e-9);
}

TEST(AdaptiveF, PicksAveragingOnNoise) {
  // Zero-mean noise: window-mean's one-step-ahead error beats last-value
  // and the trend fit.
  TimeSeries ts(1e9);
  util::Rng rng(9);
  for (int i = 0; i < 40; ++i) ts.record(i, 5.0 + rng.normal(0.0, 1.0));
  Adaptive f;
  EXPECT_EQ(f.best_candidate(ts), 1u) << "window-mean should win";
  EXPECT_NEAR(f.estimate(ts, 0.0), 5.0, 0.6);
}

TEST(AdaptiveF, ConstantSeriesAnyCandidateIsExact) {
  TimeSeries ts(1e9);
  for (int i = 0; i < 10; ++i) ts.record(i, 4.2);
  Adaptive f;
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 4.2);
}

TEST(AdaptiveF, ShortSeriesFallsBackGracefully) {
  Adaptive f;
  TimeSeries ts(100.0);
  EXPECT_DOUBLE_EQ(f.estimate(ts, 1.25), 1.25);
  ts.record(0.0, 2.0);
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 2.0);
}

TEST(AdaptiveF, Validation) {
  EXPECT_THROW(Adaptive(std::vector<ForecasterPtr>{}), std::invalid_argument);
  EXPECT_THROW(Adaptive(std::vector<ForecasterPtr>{nullptr}),
               std::invalid_argument);
  Adaptive f;
  EXPECT_NE(f.name().find("adaptive("), std::string::npos);
  EXPECT_NE(f.name().find("last-value"), std::string::npos);
}

TEST(AdaptiveF, CustomCandidates) {
  Adaptive f({std::make_shared<LastValue>(), std::make_shared<WindowMax>()});
  // On a decaying series, last-value's one-step error is smaller than the
  // stale maximum's.
  auto ts = ramp(-0.5, 10, 1.0, 10.0);
  EXPECT_EQ(f.best_candidate(ts), 0u);
}

}  // namespace
}  // namespace netsel::remos
