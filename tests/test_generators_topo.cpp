#include "topo/generators.hpp"

#include <gtest/gtest.h>

namespace netsel::topo {
namespace {

TEST(Testbed, MatchesFigure4) {
  auto g = testbed();
  EXPECT_EQ(g.node_count(), 21u);  // 18 Alphas + 3 routers
  EXPECT_EQ(g.compute_node_count(), 18u);
  EXPECT_EQ(g.link_count(), 20u);  // 18 access + 2 backbone
  ASSERT_TRUE(g.find_node("panama").has_value());
  ASSERT_TRUE(g.find_node("gibraltar").has_value());
  ASSERT_TRUE(g.find_node("suez").has_value());
  for (int i = 1; i <= 18; ++i)
    EXPECT_TRUE(g.find_node("m-" + std::to_string(i)).has_value());
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Testbed, AtmLinkIs155Mbps) {
  auto g = testbed();
  NodeId gib = g.find_node("gibraltar").value();
  NodeId suez = g.find_node("suez").value();
  bool found = false;
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    const Link& lk = g.link(static_cast<LinkId>(l));
    if ((lk.a == gib && lk.b == suez) || (lk.a == suez && lk.b == gib)) {
      EXPECT_DOUBLE_EQ(lk.capacity_ab, k155Mbps);
      found = true;
    } else {
      EXPECT_DOUBLE_EQ(lk.capacity_ab, k100Mbps);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Testbed, HostsAreTaggedAlpha) {
  auto g = testbed();
  for (NodeId n : g.compute_nodes()) EXPECT_TRUE(g.node(n).has_tag("alpha"));
}

TEST(Testbed, HostsAttachedSixPerRouter) {
  auto g = testbed();
  EXPECT_EQ(g.degree(g.find_node("panama").value()), 7u);     // 6 hosts + 1 trunk
  EXPECT_EQ(g.degree(g.find_node("gibraltar").value()), 8u);  // 6 hosts + 2 trunks
  EXPECT_EQ(g.degree(g.find_node("suez").value()), 7u);
  for (NodeId n : g.compute_nodes()) EXPECT_EQ(g.degree(n), 1u);
}

TEST(Star, ShapeAndValidation) {
  auto g = star(5, 10e6);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.compute_node_count(), 5u);
  EXPECT_EQ(g.link_count(), 5u);
  EXPECT_DOUBLE_EQ(g.link(0).capacity_ab, 10e6);
  EXPECT_THROW(star(0), std::invalid_argument);
}

TEST(Dumbbell, ShapeAndBottleneck) {
  auto g = dumbbell(3, 4, k100Mbps, 10e6);
  EXPECT_EQ(g.compute_node_count(), 7u);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.link(0).name, "bottleneck");
  EXPECT_DOUBLE_EQ(g.link(0).capacity_ab, 10e6);
  EXPECT_THROW(dumbbell(0, 1), std::invalid_argument);
}

TEST(TwoLevelTree, Shape) {
  auto g = two_level_tree(3, 4);
  EXPECT_EQ(g.node_count(), 1u + 3u + 12u);
  EXPECT_EQ(g.compute_node_count(), 12u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_THROW(two_level_tree(0, 1), std::invalid_argument);
}

TEST(RandomTree, DefaultShapeIsValidTree) {
  util::Rng rng(42);
  auto g = random_tree(rng);
  EXPECT_EQ(g.compute_node_count(), 16u);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.link_count(), g.node_count() - 1);
}

TEST(RandomTree, HostsAreLeavesWhenRequested) {
  util::Rng rng(43);
  RandomTreeOptions opt;
  opt.compute_nodes = 10;
  opt.network_nodes = 3;
  auto g = random_tree(rng, opt);
  for (NodeId n : g.compute_nodes()) EXPECT_EQ(g.degree(n), 1u);
}

TEST(RandomTree, MixedPositionsWhenAllowed) {
  util::Rng rng(44);
  RandomTreeOptions opt;
  opt.compute_nodes = 30;
  opt.network_nodes = 0;
  opt.hosts_are_leaves = false;
  auto g = random_tree(rng, opt);
  EXPECT_EQ(g.node_count(), 30u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(RandomTree, BandwidthsWithinRange) {
  util::Rng rng(45);
  RandomTreeOptions opt;
  opt.min_bw = 5e6;
  opt.max_bw = 20e6;
  auto g = random_tree(rng, opt);
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    EXPECT_GE(g.link(static_cast<LinkId>(l)).capacity_ab, 5e6);
    EXPECT_LE(g.link(static_cast<LinkId>(l)).capacity_ab, 20e6);
  }
}

TEST(RandomTree, DeterministicPerSeed) {
  util::Rng r1(7), r2(7);
  auto g1 = random_tree(r1);
  auto g2 = random_tree(r2);
  ASSERT_EQ(g1.link_count(), g2.link_count());
  for (std::size_t l = 0; l < g1.link_count(); ++l) {
    EXPECT_EQ(g1.link(static_cast<LinkId>(l)).a, g2.link(static_cast<LinkId>(l)).a);
    EXPECT_EQ(g1.link(static_cast<LinkId>(l)).b, g2.link(static_cast<LinkId>(l)).b);
    EXPECT_DOUBLE_EQ(g1.link(static_cast<LinkId>(l)).capacity_ab,
                     g2.link(static_cast<LinkId>(l)).capacity_ab);
  }
}

TEST(RandomTree, Rejections) {
  util::Rng rng(1);
  RandomTreeOptions opt;
  opt.compute_nodes = 0;
  EXPECT_THROW(random_tree(rng, opt), std::invalid_argument);
  opt.compute_nodes = 4;
  opt.network_nodes = 0;
  opt.hosts_are_leaves = true;
  EXPECT_THROW(random_tree(rng, opt), std::invalid_argument);
  opt.network_nodes = 2;
  opt.min_bw = 10.0;
  opt.max_bw = 5.0;
  EXPECT_THROW(random_tree(rng, opt), std::invalid_argument);
}

}  // namespace
}  // namespace netsel::topo
