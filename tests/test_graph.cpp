#include "topo/graph.hpp"

#include <gtest/gtest.h>

#include "topo/dot.hpp"
#include "topo/generators.hpp"

namespace netsel::topo {
namespace {

TopologyGraph tiny() {
  TopologyGraph g;
  NodeId sw = g.add_network("sw");
  g.add_compute("a");
  g.add_compute("b", 2.0, {"alpha"});
  g.add_link(sw, 1, 100e6);
  g.add_link(sw, 2, 155e6, 55e6, "asym");
  return g;
}

TEST(Graph, BasicAccessors) {
  auto g = tiny();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.compute_node_count(), 2u);
  EXPECT_EQ(g.node(0).kind, NodeKind::Network);
  EXPECT_TRUE(g.is_compute(1));
  EXPECT_FALSE(g.is_compute(0));
  EXPECT_EQ(g.node(2).cpu_capacity, 2.0);
  EXPECT_TRUE(g.node(2).has_tag("alpha"));
  EXPECT_FALSE(g.node(1).has_tag("alpha"));
}

TEST(Graph, FindNodeByName) {
  auto g = tiny();
  EXPECT_EQ(g.find_node("sw"), std::optional<NodeId>(0));
  EXPECT_EQ(g.find_node("b"), std::optional<NodeId>(2));
  EXPECT_FALSE(g.find_node("zzz").has_value());
}

TEST(Graph, ComputeNodesInIdOrder) {
  auto g = tiny();
  auto cn = g.compute_nodes();
  ASSERT_EQ(cn.size(), 2u);
  EXPECT_EQ(cn[0], 1);
  EXPECT_EQ(cn[1], 2);
}

TEST(Graph, OtherEnd) {
  auto g = tiny();
  EXPECT_EQ(g.other_end(0, 0), 1);
  EXPECT_EQ(g.other_end(0, 1), 0);
  EXPECT_THROW(g.other_end(0, 2), std::invalid_argument);
}

TEST(Graph, LinksOfAndDegree) {
  auto g = tiny();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  auto ls = g.links_of(0);
  EXPECT_EQ(ls.size(), 2u);
}

TEST(Graph, LinkCapacities) {
  auto g = tiny();
  EXPECT_DOUBLE_EQ(g.link(0).capacity_min(), 100e6);
  // Asymmetric link: min over the two directions (paper §3.3).
  EXPECT_DOUBLE_EQ(g.link(1).capacity_min(), 55e6);
  EXPECT_EQ(g.link(1).name, "asym");
  // Auto-generated name.
  EXPECT_EQ(g.link(0).name, "sw--a");
}

TEST(Graph, RejectsDuplicateName) {
  TopologyGraph g;
  g.add_compute("x");
  EXPECT_THROW(g.add_compute("x"), std::invalid_argument);
  EXPECT_THROW(g.add_network("x"), std::invalid_argument);
}

TEST(Graph, RejectsEmptyName) {
  TopologyGraph g;
  EXPECT_THROW(g.add_compute(""), std::invalid_argument);
}

TEST(Graph, RejectsBadCapacity) {
  TopologyGraph g;
  EXPECT_THROW(g.add_compute("x", 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_compute("y", -1.0), std::invalid_argument);
}

TEST(Graph, RejectsBadLinks) {
  TopologyGraph g;
  NodeId a = g.add_compute("a");
  NodeId b = g.add_compute("b");
  EXPECT_THROW(g.add_link(a, a, 1e6), std::invalid_argument);   // self loop
  EXPECT_THROW(g.add_link(a, b, 0.0), std::invalid_argument);   // zero cap
  EXPECT_THROW(g.add_link(a, 99, 1e6), std::invalid_argument);  // bad id
  EXPECT_THROW(g.add_link(-1, b, 1e6), std::invalid_argument);
}

TEST(GraphValidate, AcceptsConnected) {
  EXPECT_NO_THROW(tiny().validate());
}

TEST(GraphValidate, RejectsEmpty) {
  TopologyGraph g;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(GraphValidate, RejectsDisconnected) {
  TopologyGraph g;
  g.add_compute("a");
  g.add_compute("b");
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(GraphValidate, RejectsNoComputeNodes) {
  TopologyGraph g;
  g.add_network("s1");
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(GraphAcyclic, TreeIsAcyclic) {
  EXPECT_TRUE(tiny().is_acyclic());
  EXPECT_TRUE(testbed().is_acyclic());
}

TEST(GraphAcyclic, CycleDetected) {
  TopologyGraph g;
  NodeId a = g.add_network("a");
  NodeId b = g.add_network("b");
  NodeId c = g.add_network("c");
  g.add_compute("h");
  g.add_link(a, b, 1e6);
  g.add_link(b, c, 1e6);
  g.add_link(c, a, 1e6);
  g.add_link(a, 3, 1e6);
  EXPECT_FALSE(g.is_acyclic());
}

TEST(Dot, ExportsAllNodesAndHighlights) {
  auto g = testbed();
  DotOptions opt;
  opt.highlight = {g.find_node("m-1").value(), g.find_node("m-2").value()};
  std::string dot = to_dot(g, opt);
  EXPECT_NE(dot.find("\"panama\" [shape=box]"), std::string::npos);
  EXPECT_NE(dot.find("m-18"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);
  EXPECT_NE(dot.find("155.0 Mbps"), std::string::npos);
}

TEST(Dot, CustomLinkLabelsValidated) {
  auto g = tiny();
  DotOptions opt;
  opt.link_labels = {"one"};  // wrong size
  EXPECT_THROW(to_dot(g, opt), std::invalid_argument);
  opt.link_labels = {"one", "two"};
  std::string dot = to_dot(g, opt);
  EXPECT_NE(dot.find("one"), std::string::npos);
  EXPECT_NE(dot.find("two"), std::string::npos);
}

}  // namespace
}  // namespace netsel::topo
