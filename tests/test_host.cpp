#include "sim/host.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace netsel::sim {
namespace {

struct HostFixture : ::testing::Test {
  Simulator sim;
  HostConfig cfg{1.0, 60.0};
};

TEST_F(HostFixture, SingleJobRunsAtFullCapacity) {
  Host h(sim, cfg);
  double done_at = -1.0;
  h.submit(10.0, kBackgroundOwner, [&](JobId) { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST_F(HostFixture, CapacityScalesServiceRate) {
  HostConfig fast{2.0, 60.0};
  Host h(sim, fast);
  double done_at = -1.0;
  h.submit(10.0, kBackgroundOwner, [&](JobId) { done_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST_F(HostFixture, TwoEqualJobsShareProcessor) {
  Host h(sim, cfg);
  double a = -1, b = -1;
  h.submit(5.0, kBackgroundOwner, [&](JobId) { a = sim.now(); });
  h.submit(5.0, kBackgroundOwner, [&](JobId) { b = sim.now(); });
  sim.run();
  // Both share the CPU the whole time: each takes 10 s.
  EXPECT_DOUBLE_EQ(a, 10.0);
  EXPECT_DOUBLE_EQ(b, 10.0);
}

TEST_F(HostFixture, ProcessorSharingClosedForm) {
  // Jobs of 4 and 8 cpu-seconds started together: the short one finishes at
  // t=8 (rate 1/2); the long one then runs alone: 8 + (8-4) = 12.
  Host h(sim, cfg);
  double a = -1, b = -1;
  h.submit(4.0, kBackgroundOwner, [&](JobId) { a = sim.now(); });
  h.submit(8.0, kBackgroundOwner, [&](JobId) { b = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(a, 8.0);
  EXPECT_DOUBLE_EQ(b, 12.0);
}

TEST_F(HostFixture, LateArrivalSlowsRunningJob) {
  // Job A (10 cpu-s) starts at 0; job B (2 cpu-s) arrives at 4.
  // A alone 0..4 does 4 work. Then both at rate 1/2: B finishes at 4+4=8
  // (2 work), A has 10-4-2=4 left, alone again: finishes at 12.
  Host h(sim, cfg);
  double a = -1, b = -1;
  h.submit(10.0, kBackgroundOwner, [&](JobId) { a = sim.now(); });
  sim.schedule_at(4.0, [&] {
    h.submit(2.0, kBackgroundOwner, [&](JobId) { b = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(b, 8.0);
  EXPECT_DOUBLE_EQ(a, 12.0);
}

TEST_F(HostFixture, KillReturnsRemainingWork) {
  Host h(sim, cfg);
  bool completed = false;
  JobId id = h.submit(10.0, kBackgroundOwner, [&](JobId) { completed = true; });
  sim.run_until(4.0);
  double left = h.kill(id);
  EXPECT_DOUBLE_EQ(left, 6.0);
  EXPECT_FALSE(h.is_active(id));
  sim.run();
  EXPECT_FALSE(completed) << "killed job must not fire its callback";
  EXPECT_THROW(h.kill(id), std::invalid_argument);
}

TEST_F(HostFixture, RemainingWorkSettledToNow) {
  Host h(sim, cfg);
  JobId a = h.submit(10.0, kBackgroundOwner);
  h.submit(10.0, kBackgroundOwner);
  sim.run_until(6.0);
  EXPECT_NEAR(h.remaining_work(a), 10.0 - 3.0, 1e-9);  // rate 1/2 for 6 s
}

TEST_F(HostFixture, ActiveJobCounts) {
  Host h(sim, cfg);
  EXPECT_EQ(h.active_jobs(), 0);
  h.submit(100.0, kBackgroundOwner);
  h.submit(100.0, 7);
  h.submit(100.0, 7);
  EXPECT_EQ(h.active_jobs(), 3);
  EXPECT_EQ(h.active_jobs_excluding(7), 1);
  EXPECT_EQ(h.active_jobs_excluding(kBackgroundOwner), 2);
  EXPECT_DOUBLE_EQ(h.current_rate_per_job(), 1.0 / 3.0);
}

TEST_F(HostFixture, LoadAverageConvergesToJobCount) {
  Host h(sim, cfg);
  h.submit(1e9, kBackgroundOwner);
  h.submit(1e9, kBackgroundOwner);
  EXPECT_NEAR(h.load_average(), 0.0, 1e-12);
  sim.run_until(60.0);  // one time constant: 2 * (1 - e^-1)
  EXPECT_NEAR(h.load_average(), 2.0 * (1.0 - std::exp(-1.0)), 1e-9);
  sim.run_until(600.0);
  EXPECT_NEAR(h.load_average(), 2.0, 1e-4);
}

TEST_F(HostFixture, LoadAverageDecaysAfterCompletion) {
  Host h(sim, cfg);
  h.submit(30.0, kBackgroundOwner);  // finishes at t=30
  sim.run_until(30.0);
  double peak = h.load_average();
  EXPECT_NEAR(peak, 1.0 - std::exp(-0.5), 1e-9);
  sim.run_until(90.0);  // one tau after completion
  EXPECT_NEAR(h.load_average(), peak * std::exp(-1.0), 1e-9);
}

TEST_F(HostFixture, LoadAverageExcludingOwner) {
  Host h(sim, cfg);
  h.submit(1e9, kBackgroundOwner);
  h.submit(1e9, 42);
  sim.run_until(600.0);
  EXPECT_NEAR(h.load_average(), 2.0, 1e-3);
  EXPECT_NEAR(h.load_average_excluding(42), 1.0, 1e-3);
  EXPECT_NEAR(h.load_average_excluding(kBackgroundOwner), 1.0, 1e-3);
  EXPECT_NEAR(h.load_average_excluding(99), 2.0, 1e-3) << "unknown owner";
}

TEST_F(HostFixture, CompletionCallbackMaySubmitToSameHost) {
  Host h(sim, cfg);
  double second_done = -1.0;
  h.submit(2.0, kBackgroundOwner, [&](JobId) {
    h.submit(3.0, kBackgroundOwner, [&](JobId) { second_done = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(second_done, 5.0);
}

TEST_F(HostFixture, SimultaneousCompletionsAllFire) {
  Host h(sim, cfg);
  int done = 0;
  h.submit(5.0, kBackgroundOwner, [&](JobId) { ++done; });
  h.submit(5.0, kBackgroundOwner, [&](JobId) { ++done; });
  h.submit(5.0, kBackgroundOwner, [&](JobId) { ++done; });
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(h.active_jobs(), 0);
}

TEST_F(HostFixture, Rejections) {
  Host h(sim, cfg);
  EXPECT_THROW(h.submit(0.0, kBackgroundOwner), std::invalid_argument);
  EXPECT_THROW(h.submit(-1.0, kBackgroundOwner), std::invalid_argument);
  EXPECT_THROW(h.remaining_work(999), std::invalid_argument);
  EXPECT_THROW(Host(sim, HostConfig{0.0, 60.0}), std::invalid_argument);
  EXPECT_THROW(Host(sim, HostConfig{1.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace netsel::sim
