// Cross-module integration tests: the full framework pipeline of the paper
// exercised end to end on the simulated testbed — generators -> Remos ->
// selection -> application execution — plus the Fig. 4 avoidance scenario
// and a miniature Table-1 claim check.

#include <gtest/gtest.h>

#include <chrono>

#include "api/service.hpp"
#include "appsim/presets.hpp"
#include "exp/experiment.hpp"
#include "load/traffic_generator.hpp"
#include "select/objective.hpp"
#include "topo/generators.hpp"
#include "topo/parse.hpp"

namespace netsel {
namespace {

TEST(Integration, Figure4AvoidanceScenario) {
  // The paper's Fig. 4: with a traffic stream m-16 -> m-18, the 4
  // automatically selected nodes avoid the stream's endpoints.
  sim::NetworkSim net(topo::testbed());
  auto m16 = net.topology().find_node("m-16").value();
  auto m18 = net.topology().find_node("m-18").value();
  load::BulkStream stream(net, m16, m18);
  stream.start();
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(20.0);

  select::SelectionOptions opt;
  opt.num_nodes = 4;
  auto r = select::select_balanced(remos.snapshot(), opt);
  ASSERT_TRUE(r.feasible);
  for (auto n : r.nodes) {
    EXPECT_NE(n, m16);
    EXPECT_NE(n, m18);
  }
  auto ev = select::evaluate_set(remos.snapshot(), r.nodes, opt);
  EXPECT_GT(ev.min_pair_bw, 90e6) << "selected nodes see clean paths";
}

TEST(Integration, SubgraphSelectionAgreesWithFullGraph) {
  // Selecting on the projected "relevant part" around a candidate pool
  // must agree with selecting on the full graph restricted to that pool.
  sim::NetworkSim net(topo::testbed());
  auto m16 = net.topology().find_node("m-16").value();
  auto m18 = net.topology().find_node("m-18").value();
  load::BulkStream stream(net, m16, m18);
  stream.start();
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(20.0);

  // Pool: all of suez's and gibraltar's hosts.
  std::vector<topo::NodeId> pool;
  for (int i = 7; i <= 18; ++i)
    pool.push_back(net.topology().find_node("m-" + std::to_string(i)).value());

  auto full_snap = remos.snapshot();
  select::SelectionOptions full_opt;
  full_opt.num_nodes = 4;
  full_opt.eligible.assign(net.topology().node_count(), 0);
  for (auto n : pool) full_opt.eligible[static_cast<std::size_t>(n)] = 1;
  auto full = select::select_balanced(full_snap, full_opt);
  ASSERT_TRUE(full.feasible);

  auto sub = remos.logical_subgraph(pool);
  auto sub_snap = remos::project_snapshot(full_snap, sub);
  select::SelectionOptions sub_opt;
  sub_opt.num_nodes = 4;
  auto on_sub = select::select_balanced(sub_snap, sub_opt);
  ASSERT_TRUE(on_sub.feasible);

  std::vector<std::string> full_names, sub_names;
  for (auto n : full.nodes) full_names.push_back(net.topology().node(n).name);
  for (auto n : on_sub.nodes) sub_names.push_back(sub.graph.node(n).name);
  EXPECT_EQ(full_names, sub_names);
}

TEST(Integration, ParsedTestbedBehavesLikeBuiltIn) {
  // Round-trip the testbed through the text format and run the FFT
  // reference on the parsed copy: identical result.
  auto parsed = topo::parse_topology(topo::format_topology(topo::testbed()));
  sim::NetworkSim net(std::move(parsed));
  appsim::LooselySynchronousApp app(net, appsim::fft1k());
  std::vector<topo::NodeId> nodes;
  for (const char* n : {"m-1", "m-2", "m-3", "m-4"})
    nodes.push_back(net.topology().find_node(n).value());
  app.start(nodes);
  net.sim().run();
  EXPECT_NEAR(app.elapsed(), 48.0, 0.1);
}

TEST(Integration, ServicePlacementRunsTheApp) {
  // AppSpec -> placement -> execution, under live background activity.
  sim::NetworkSim net(topo::testbed());
  util::Rng master(101);
  exp::Scenario scen = exp::table1_scenario(true, true);
  load::HostLoadGenerator loadgen(net, scen.load, master.fork("load"));
  load::TrafficGenerator trafficgen(net, scen.traffic, master.fork("traffic"));
  remos::Remos remos(net);
  loadgen.start();
  trafficgen.start();
  remos.start();
  net.sim().run_until(300.0);

  api::NodeSelectionService svc(remos);
  auto spec = api::AppSpec::spmd("fft", 4, api::AppPattern::LooselySynchronous);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);

  appsim::LooselySynchronousApp app(net, appsim::fft1k());
  app.start(placement.flat());
  while (!app.finished()) {
    ASSERT_LT(net.sim().now(), 50000.0);
    ASSERT_TRUE(net.sim().step());
  }
  EXPECT_GT(app.elapsed(), 40.0);
  EXPECT_LT(app.elapsed(), 500.0);
}

TEST(Integration, MiniTable1AutoBeatsRandomOverall) {
  // The headline claim in miniature: summed over the three applications
  // under load+traffic, automatic selection reduces total execution time.
  const int trials = 4;
  double total_random = 0.0, total_auto = 0.0;
  for (const auto& app :
       {exp::fft_case(), exp::airshed_case(), exp::mri_case()}) {
    auto s = exp::table1_scenario(true, true);
    total_random +=
        exp::run_cell(app, s, exp::Policy::Random, trials, 31).mean();
    total_auto +=
        exp::run_cell(app, s, exp::Policy::AutoBalanced, trials, 31).mean();
  }
  EXPECT_LT(total_auto, total_random);
}

TEST(Integration, SelectionCostInsignificantVsExecution) {
  // §3.2: "the computation time of these algorithms has been insignificant
  // in comparison with the execution times of the applications" — measure
  // a selection on the testbed snapshot in wall-clock terms and assert it
  // is far below a millisecond (application runs are tens of seconds).
  sim::NetworkSim net(topo::testbed());
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(5.0);
  auto snap = remos.snapshot();
  select::SelectionOptions opt;
  opt.num_nodes = 4;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) {
    auto r = select::select_balanced(snap, opt);
    ASSERT_TRUE(r.feasible);
  }
  auto dt = std::chrono::steady_clock::now() - t0;
  double per_call =
      std::chrono::duration<double>(dt).count() / 100.0;
  EXPECT_LT(per_call, 5e-3);
}

}  // namespace
}  // namespace netsel
