// Tests for the latency-aware extension (§3.4 future work): latency in the
// topology and simulator, the all-pairs latency matrix, min-latency
// selection against brute force, and the latency-bounded balanced variant.

#include <gtest/gtest.h>

#include <functional>

#include "select/algorithms.hpp"
#include "select/brute_force.hpp"
#include "select/latency.hpp"
#include "select/objective.hpp"
#include "sim/network_sim.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

/// Two clusters: a "near" switch with low-latency hosts and a "far" switch
/// reached over a high-latency trunk.
struct Clusters {
  topo::TopologyGraph g;
  topo::NodeId near0, near1, near2, far0, far1;

  Clusters() {
    auto sw_near = g.add_network("sw-near");
    auto sw_far = g.add_network("sw-far");
    topo::TopologyGraph::LinkSpec trunk;
    trunk.capacity_ab = 100e6;
    trunk.latency = 20e-3;
    g.add_link(sw_near, sw_far, trunk);
    auto attach = [&](topo::NodeId sw, const char* name, double lat) {
      auto h = g.add_compute(name);
      topo::TopologyGraph::LinkSpec spec;
      spec.capacity_ab = 100e6;
      spec.latency = lat;
      g.add_link(sw, h, spec);
      return h;
    };
    near0 = attach(sw_near, "n0", 1e-3);
    near1 = attach(sw_near, "n1", 1e-3);
    near2 = attach(sw_near, "n2", 1e-3);
    far0 = attach(sw_far, "f0", 1e-3);
    far1 = attach(sw_far, "f1", 1e-3);
    g.validate();
  }
};

TEST(LatencyTopo, LinkSpecStoresLatency) {
  Clusters c;
  EXPECT_DOUBLE_EQ(c.g.link(0).latency, 20e-3);
  EXPECT_DOUBLE_EQ(c.g.link(1).latency, 1e-3);
  topo::TopologyGraph g;
  auto a = g.add_compute("a");
  auto b = g.add_compute("b");
  topo::TopologyGraph::LinkSpec bad;
  bad.capacity_ab = 1e6;
  bad.latency = -1.0;
  EXPECT_THROW(g.add_link(a, b, bad), std::invalid_argument);
}

TEST(LatencyTopo, AllPairsMatrix) {
  Clusters c;
  auto dist = all_pairs_latency(c.g);
  std::size_t n = c.g.node_count();
  auto d = [&](topo::NodeId a, topo::NodeId b) {
    return dist[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)];
  };
  EXPECT_DOUBLE_EQ(d(c.near0, c.near0), 0.0);
  EXPECT_DOUBLE_EQ(d(c.near0, c.near1), 2e-3);
  EXPECT_DOUBLE_EQ(d(c.near0, c.far0), 1e-3 + 20e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(d(c.far0, c.near0), d(c.near0, c.far0));
}

TEST(LatencySim, FlowCompletionIncludesLinkLatency) {
  Clusters c;
  sim::NetworkSim net(std::move(c.g));
  auto n0 = net.topology().find_node("n0").value();
  auto f0 = net.topology().find_node("f0").value();
  double done = -1.0;
  // Tiny transfer: latency-bound. Path latency = 22 ms.
  net.network().start_flow(n0, f0, 8.0, sim::kBackgroundOwner,
                           [&](sim::FlowId) { done = net.sim().now(); });
  net.sim().run();
  EXPECT_NEAR(done, 22e-3, 1e-9);
}

TEST(LatencyEval, EvaluateSetReportsMaxPairLatency) {
  Clusters c;
  remos::NetworkSnapshot snap(c.g);
  auto ev = evaluate_set(snap, {c.near0, c.near1, c.far0});
  EXPECT_DOUBLE_EQ(ev.max_pair_latency, 22e-3);
  auto ev2 = evaluate_set(snap, {c.near0, c.near1, c.near2});
  EXPECT_DOUBLE_EQ(ev2.max_pair_latency, 2e-3);
}

TEST(SelectMinLatency, PicksTheNearCluster) {
  Clusters c;
  remos::NetworkSnapshot snap(c.g);
  SelectionOptions opt;
  opt.num_nodes = 3;
  auto r = select_min_latency(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes, (std::vector<topo::NodeId>{c.near0, c.near1, c.near2}));
  EXPECT_DOUBLE_EQ(r.objective, -2e-3);
  EXPECT_NE(r.note.find("0.002"), std::string::npos);
}

TEST(SelectMinLatency, TieBreaksTowardCpu) {
  Clusters c;
  remos::NetworkSnapshot snap(c.g);
  snap.set_cpu(c.near1, 0.2);  // make n1 undesirable
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto r = select_min_latency(snap, opt);
  ASSERT_TRUE(r.feasible);
  // Any same-switch pair has latency 2 ms; prefer the pair with better cpu.
  EXPECT_EQ(r.min_cpu, 1.0);
  EXPECT_TRUE(std::find(r.nodes.begin(), r.nodes.end(), c.near1) ==
              r.nodes.end());
}

TEST(SelectMinLatency, InfeasibleWhenTooFewNodes) {
  Clusters c;
  remos::NetworkSnapshot snap(c.g);
  SelectionOptions opt;
  opt.num_nodes = 6;
  EXPECT_FALSE(select_min_latency(snap, opt).feasible);
}

struct LatencySweepParam {
  std::uint64_t seed;
  int m;
};

class MinLatencyQuality : public ::testing::TestWithParam<LatencySweepParam> {};

TEST_P(MinLatencyQuality, NearOptimalOnRandomTrees) {
  // Brute-force the min-max-pairwise-latency subset and require the
  // best-center heuristic to be within 1.5x on every instance (it is exact
  // on most).
  auto p = GetParam();
  util::Rng rng(p.seed);
  topo::RandomTreeOptions topt;
  topt.compute_nodes = 9;
  topt.network_nodes = 4;
  auto g = topo::random_tree(rng, topt);
  // Assign random latencies.
  // (random_tree has none; rebuild an equivalent graph with latencies.)
  topo::TopologyGraph lg;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const auto& n = g.node(static_cast<topo::NodeId>(i));
    if (n.kind == topo::NodeKind::Compute) {
      lg.add_compute(n.name, n.cpu_capacity, n.tags);
    } else {
      lg.add_network(n.name);
    }
  }
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    const auto& lk = g.link(static_cast<topo::LinkId>(l));
    topo::TopologyGraph::LinkSpec spec;
    spec.capacity_ab = lk.capacity_ab;
    spec.latency = rng.uniform(1e-4, 2e-2);
    lg.add_link(lk.a, lk.b, spec);
  }
  remos::NetworkSnapshot snap(lg);
  SelectionOptions opt;
  opt.num_nodes = p.m;

  auto algo = select_min_latency(snap, opt);
  ASSERT_TRUE(algo.feasible);
  double algo_latency = -algo.objective;

  // Brute force over all subsets.
  auto dist = all_pairs_latency(lg);
  std::size_t n = lg.node_count();
  auto computes = lg.compute_nodes();
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> idx(static_cast<std::size_t>(p.m));
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t pos,
                                                          std::size_t from) {
    if (pos == idx.size()) {
      double mx = 0.0;
      for (std::size_t i = 0; i + 1 < idx.size(); ++i)
        for (std::size_t j = i + 1; j < idx.size(); ++j)
          mx = std::max(
              mx, dist[static_cast<std::size_t>(computes[static_cast<std::size_t>(idx[i])]) * n +
                       static_cast<std::size_t>(computes[static_cast<std::size_t>(idx[j])])]);
      best = std::min(best, mx);
      return;
    }
    for (std::size_t k = from; k < computes.size(); ++k) {
      idx[pos] = static_cast<int>(k);
      rec(pos + 1, k + 1);
    }
  };
  rec(0, 0);

  EXPECT_GE(algo_latency, best - 1e-12) << "cannot beat the optimum";
  EXPECT_LE(algo_latency, best * 1.5 + 1e-12)
      << "seed " << p.seed << " m " << p.m;
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, MinLatencyQuality,
    ::testing::Values(LatencySweepParam{1, 3}, LatencySweepParam{2, 3},
                      LatencySweepParam{3, 4}, LatencySweepParam{4, 4},
                      LatencySweepParam{5, 5}, LatencySweepParam{6, 5},
                      LatencySweepParam{7, 2}, LatencySweepParam{8, 6}));

TEST(BalancedLatencyBound, UnconstrainedResultPassesThrough) {
  Clusters c;
  remos::NetworkSnapshot snap(c.g);
  SelectionOptions opt;
  opt.num_nodes = 3;
  auto bounded = select_balanced_latency_bound(snap, opt, 1.0);  // loose
  auto plain = select_balanced(snap, opt);
  ASSERT_TRUE(bounded.feasible);
  EXPECT_EQ(bounded.nodes, plain.nodes);
}

TEST(BalancedLatencyBound, BoundForcesNearCluster) {
  Clusters c;
  remos::NetworkSnapshot snap(c.g);
  // Make the far nodes the cpu-best so unconstrained selection wants them.
  snap.set_cpu(c.near0, 0.6);
  snap.set_cpu(c.near1, 0.6);
  snap.set_cpu(c.near2, 0.6);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto plain = select_balanced(snap, opt);
  ASSERT_TRUE(plain.feasible);
  EXPECT_EQ(plain.nodes, (std::vector<topo::NodeId>{c.far0, c.far1}));
  // 5 ms ceiling rules out anything crossing the 20 ms trunk; far0--far1
  // is only 2 ms apart though, so tighten to also rule them out? No:
  // far0-far1 are both under sw-far (2 ms). The ceiling should KEEP them.
  auto bounded = select_balanced_latency_bound(snap, opt, 5e-3);
  ASSERT_TRUE(bounded.feasible);
  EXPECT_EQ(bounded.nodes, (std::vector<topo::NodeId>{c.far0, c.far1}));
  // Now demand 3 nodes: no single cluster has 3 idle... near has 3 nodes
  // within 2 ms pairwise; far has only 2. The bound admits only the near
  // trio.
  opt.num_nodes = 3;
  auto three = select_balanced_latency_bound(snap, opt, 5e-3);
  ASSERT_TRUE(three.feasible);
  EXPECT_EQ(three.nodes,
            (std::vector<topo::NodeId>{c.near0, c.near1, c.near2}));
  // An impossible ceiling is infeasible.
  EXPECT_FALSE(select_balanced_latency_bound(snap, opt, 1e-4).feasible);
  EXPECT_THROW(select_balanced_latency_bound(snap, opt, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace netsel::select
