#include "load/load_generator.hpp"
#include "load/traffic_generator.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace netsel::load {
namespace {

sim::NetworkSimConfig default_cfg() { return {}; }

TEST(LoadGen, GeneratesJobsAtConfiguredRate) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  LoadGenConfig cfg;
  cfg.mean_interarrival = 10.0;
  HostLoadGenerator gen(net, cfg, util::Rng(1));
  gen.start();
  net.sim().run_until(2000.0);
  // 18 nodes * 2000 s / 10 s mean = 3600 expected arrivals.
  double expected = 18.0 * 2000.0 / 10.0;
  EXPECT_NEAR(static_cast<double>(gen.jobs_generated()), expected,
              expected * 0.1);
}

TEST(LoadGen, IntensityScalesRate) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  LoadGenConfig cfg;
  cfg.mean_interarrival = 10.0;
  cfg.intensity = 2.0;
  HostLoadGenerator gen(net, cfg, util::Rng(1));
  gen.start();
  net.sim().run_until(1000.0);
  double expected = 18.0 * 1000.0 / 5.0;
  EXPECT_NEAR(static_cast<double>(gen.jobs_generated()), expected,
              expected * 0.1);
}

TEST(LoadGen, ZeroIntensityGeneratesNothing) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  LoadGenConfig cfg;
  cfg.intensity = 0.0;
  HostLoadGenerator gen(net, cfg, util::Rng(1));
  gen.start();
  EXPECT_FALSE(gen.running());
  net.sim().run_until(500.0);
  EXPECT_EQ(gen.jobs_generated(), 0u);
}

TEST(LoadGen, StopHaltsNewArrivals) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  LoadGenConfig cfg;
  cfg.mean_interarrival = 5.0;
  HostLoadGenerator gen(net, cfg, util::Rng(2));
  gen.start();
  net.sim().run_until(200.0);
  gen.stop();
  auto count = gen.jobs_generated();
  EXPECT_GT(count, 0u);
  net.sim().run_until(1000.0);
  EXPECT_EQ(gen.jobs_generated(), count);
}

TEST(LoadGen, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::NetworkSim net(topo::testbed(), default_cfg());
    HostLoadGenerator gen(net, LoadGenConfig{}, util::Rng(seed));
    gen.start();
    net.sim().run_until(800.0);
    return std::pair(gen.jobs_generated(), gen.total_work_generated());
  };
  auto [n1, w1] = run(7);
  auto [n2, w2] = run(7);
  auto [n3, w3] = run(8);
  EXPECT_EQ(n1, n2);
  EXPECT_DOUBLE_EQ(w1, w2);
  EXPECT_TRUE(n1 != n3 || w1 != w3);
}

TEST(LoadGen, JobsActuallyLoadHosts) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  LoadGenConfig cfg;
  cfg.mean_interarrival = 5.0;  // heavy
  HostLoadGenerator gen(net, cfg, util::Rng(3));
  gen.start();
  net.sim().run_until(1200.0);
  double total_load = 0.0;
  for (topo::NodeId n : net.topology().compute_nodes())
    total_load += net.host(n).load_average();
  EXPECT_GT(total_load, 1.0) << "synthetic jobs should raise load averages";
}

TEST(LoadGen, OfferedLoadFormula) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  LoadGenConfig cfg;
  cfg.mean_interarrival = 50.0;
  cfg.p_exponential = 1.0;  // pure exponential, mean 4
  cfg.exp_mean = 4.0;
  HostLoadGenerator gen(net, cfg, util::Rng(4));
  EXPECT_NEAR(gen.offered_load_per_node(), 4.0 / 50.0, 1e-12);
}

TEST(LoadGen, Rejections) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  LoadGenConfig bad;
  bad.mean_interarrival = 0.0;
  EXPECT_THROW(HostLoadGenerator(net, bad, util::Rng(1)), std::invalid_argument);
  bad = LoadGenConfig{};
  bad.intensity = -1.0;
  EXPECT_THROW(HostLoadGenerator(net, bad, util::Rng(1)), std::invalid_argument);
}

TEST(TrafficGen, GeneratesMessagesAtConfiguredRate) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  TrafficGenConfig cfg;
  cfg.mean_interarrival = 1.0;
  cfg.size_mean_bytes = 1e5;  // keep the network uncongested
  cfg.size_sigma = 0.5;
  TrafficGenerator gen(net, cfg, util::Rng(5));
  gen.start();
  net.sim().run_until(3000.0);
  EXPECT_NEAR(static_cast<double>(gen.messages_generated()), 3000.0, 300.0);
}

TEST(TrafficGen, MeanMessageSizeMatches) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  TrafficGenConfig cfg;
  cfg.mean_interarrival = 0.5;
  cfg.size_mean_bytes = 2e6;
  cfg.size_sigma = 1.0;
  TrafficGenerator gen(net, cfg, util::Rng(6));
  gen.start();
  net.sim().run_until(5000.0);
  double mean_size = gen.total_bytes_generated() /
                     static_cast<double>(gen.messages_generated());
  EXPECT_NEAR(mean_size, 2e6, 2e5);
}

TEST(TrafficGen, FlowsTraverseTheNetwork) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  TrafficGenConfig cfg;
  cfg.mean_interarrival = 0.05;
  cfg.size_mean_bytes = 50e6;
  TrafficGenerator gen(net, cfg, util::Rng(7));
  gen.start();
  net.sim().run_until(30.0);
  EXPECT_GT(net.network().active_flows(), 0);
}

TEST(TrafficGen, StopHaltsGeneration) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  TrafficGenConfig cfg;
  cfg.mean_interarrival = 0.5;
  TrafficGenerator gen(net, cfg, util::Rng(8));
  gen.start();
  net.sim().run_until(50.0);
  gen.stop();
  auto count = gen.messages_generated();
  net.sim().run_until(500.0);
  EXPECT_EQ(gen.messages_generated(), count);
}

TEST(TrafficGen, OfferedBitsFormula) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  TrafficGenConfig cfg;
  cfg.mean_interarrival = 2.0;
  cfg.size_mean_bytes = 1e6;
  TrafficGenerator gen(net, cfg, util::Rng(9));
  EXPECT_NEAR(gen.offered_bits_per_second(), 1e6 * 8.0 / 2.0, 1.0);
}

TEST(TrafficGen, RequiresTwoHosts) {
  sim::NetworkSim net(topo::star(1), default_cfg());
  EXPECT_THROW(TrafficGenerator(net, TrafficGenConfig{}, util::Rng(1)),
               std::invalid_argument);
}

TEST(BulkStreamTest, HoldsBandwidthContinuously) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  topo::NodeId m16 = net.topology().find_node("m-16").value();
  topo::NodeId m18 = net.topology().find_node("m-18").value();
  BulkStream stream(net, m16, m18);
  stream.start();
  net.sim().run_until(10.0);
  // Full 100 Mbps for 10 s = 125 MB (chunk boundaries are seamless).
  EXPECT_GT(stream.bytes_transferred() +
                0.0,  // transferred counts only completed chunks so far
            0.0);
  // The links on the m-16 -> m-18 route are busy right now.
  auto links = net.routes().route(m16, m18);
  auto nodes = net.routes().route_nodes(m16, m18);
  bool fwd = net.topology().link(links[0]).a == nodes[0];
  EXPECT_NEAR(net.network().link_used_bw(links[0], fwd), 100e6, 1e3);
  stream.stop();
  EXPECT_NEAR(stream.bytes_transferred(), 125e6, 1e6);
  net.sim().run_until(20.0);
  EXPECT_NEAR(net.network().link_used_bw(links[0], fwd), 0.0, 1e-9);
}

TEST(BulkStreamTest, Rejections) {
  sim::NetworkSim net(topo::testbed(), default_cfg());
  topo::NodeId m1 = net.topology().find_node("m-1").value();
  EXPECT_THROW(BulkStream(net, m1, m1), std::invalid_argument);
  topo::NodeId m2 = net.topology().find_node("m-2").value();
  EXPECT_THROW(BulkStream(net, m1, m2, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace netsel::load
