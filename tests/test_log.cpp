#include "util/log.hpp"

#include <gtest/gtest.h>

namespace netsel::util {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelRoundTrips) {
  LevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, MacroSuppressedBelowThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::Off);
  // The streamed expression must not be evaluated when suppressed.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 42;
  };
  NETSEL_LOG_DEBUG << count();
  NETSEL_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, MacroEvaluatesWhenEnabled) {
  LevelGuard guard;
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 42;
  };
  NETSEL_LOG_DEBUG << count();  // below threshold
  EXPECT_EQ(evaluations, 0);
  // Error passes the threshold; redirect stderr noise is acceptable in a
  // test run (single line).
  NETSEL_LOG_ERROR << "test error line " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::Trace), static_cast<int>(LogLevel::Debug));
  EXPECT_LT(static_cast<int>(LogLevel::Debug), static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info), static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn), static_cast<int>(LogLevel::Error));
  EXPECT_LT(static_cast<int>(LogLevel::Error), static_cast<int>(LogLevel::Off));
}

}  // namespace
}  // namespace netsel::util
