#include "util/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace netsel::util {
namespace {

/// RAII guard restoring the global log level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

/// RAII guard restoring the default stderr sink after each test.
struct SinkGuard {
  ~SinkGuard() { set_log_sink(nullptr); }
};

TEST(Log, LevelRoundTrips) {
  LevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, MacroSuppressedBelowThreshold) {
  LevelGuard guard;
  set_log_level(LogLevel::Off);
  // The streamed expression must not be evaluated when suppressed.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 42;
  };
  NETSEL_LOG_DEBUG << count();
  NETSEL_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, MacroEvaluatesWhenEnabled) {
  LevelGuard guard;
  set_log_level(LogLevel::Error);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 42;
  };
  NETSEL_LOG_DEBUG << count();  // below threshold
  EXPECT_EQ(evaluations, 0);
  // Error passes the threshold; redirect stderr noise is acceptable in a
  // test run (single line).
  NETSEL_LOG_ERROR << "test error line " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, SinkCapturesLevelAndContent) {
  LevelGuard guard;
  SinkGuard sink_guard;
  set_log_level(LogLevel::Trace);
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel lvl, const std::string& msg) {
    captured.emplace_back(lvl, msg);
  });
  NETSEL_LOG_TRACE << "trace " << 1;
  NETSEL_LOG_WARN << "warn " << 2;
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::Trace);
  EXPECT_EQ(captured[0].second, "trace 1");
  EXPECT_EQ(captured[1].first, LogLevel::Warn);
  EXPECT_EQ(captured[1].second, "warn 2");
}

TEST(Log, NullSinkRestoresDefault) {
  LevelGuard guard;
  SinkGuard sink_guard;
  set_log_level(LogLevel::Off);
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  set_log_sink(nullptr);
  // With the default sink back and the level Off, nothing reaches either
  // destination; the replaced sink must not be invoked anymore.
  set_log_level(LogLevel::Error);
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  NETSEL_LOG_ERROR << "captured";
  set_log_sink(nullptr);
  set_log_level(LogLevel::Off);
  NETSEL_LOG_ERROR << "suppressed";
  EXPECT_EQ(calls, 1);
}

TEST(Log, TraceMacroRespectsThreshold) {
  LevelGuard guard;
  SinkGuard sink_guard;
  int lines = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++lines; });
  set_log_level(LogLevel::Debug);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 7;
  };
  NETSEL_LOG_TRACE << count();  // below Debug: not evaluated, not emitted
  EXPECT_EQ(evaluations, 0);
  EXPECT_EQ(lines, 0);
  set_log_level(LogLevel::Trace);
  NETSEL_LOG_TRACE << count();
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(lines, 1);
}

TEST(Log, ConcurrentLevelChangesAndLogging) {
  LevelGuard guard;
  SinkGuard sink_guard;
  std::mutex mu;
  std::vector<std::string> lines;
  set_log_sink([&](LogLevel, const std::string& msg) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(msg);
  });
  set_log_level(LogLevel::Info);
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    // Hammer the level while other threads log: the atomic threshold and
    // mutex-guarded sink copy must stay tear-free under TSan.
    for (int i = 0; i < 2000; ++i)
      set_log_level(i % 2 == 0 ? LogLevel::Info : LogLevel::Off);
    stop.store(true);
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 4; ++t)
    loggers.emplace_back([&, t] {
      while (!stop.load()) NETSEL_LOG_INFO << "worker " << t;
    });
  toggler.join();
  for (auto& th : loggers) th.join();
  set_log_sink(nullptr);
  // Every captured line must be complete (no interleaving within a line).
  std::lock_guard<std::mutex> lock(mu);
  for (const std::string& line : lines)
    EXPECT_EQ(line.rfind("worker ", 0), 0u) << line;
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::Trace), static_cast<int>(LogLevel::Debug));
  EXPECT_LT(static_cast<int>(LogLevel::Debug), static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info), static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn), static_cast<int>(LogLevel::Error));
  EXPECT_LT(static_cast<int>(LogLevel::Error), static_cast<int>(LogLevel::Off));
}

}  // namespace
}  // namespace netsel::util
