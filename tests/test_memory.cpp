// Tests for the memory-availability extension (§3.4: "memory and disk
// availability on the compute nodes" as future selection factors): topology
// attribute, host accounting, monitor/Remos reporting, and the
// min-free-memory selection requirement.

#include <gtest/gtest.h>

#include "load/load_generator.hpp"
#include "remos/remos.hpp"
#include "select/algorithms.hpp"
#include "topo/generators.hpp"
#include "topo/parse.hpp"

namespace netsel {
namespace {

topo::TopologyGraph mem_star(double gb_each = 1e9) {
  auto g = topo::star(4);
  for (auto n : g.compute_nodes()) g.set_memory(n, gb_each);
  return g;
}

TEST(MemoryTopo, AttributeAndValidation) {
  auto g = mem_star();
  EXPECT_DOUBLE_EQ(g.node(1).memory_bytes, 1e9);
  EXPECT_THROW(g.set_memory(0, 1e9), std::invalid_argument);  // switch
  EXPECT_THROW(g.set_memory(1, -1.0), std::invalid_argument);
  EXPECT_THROW(g.set_memory(99, 1e9), std::invalid_argument);
}

TEST(MemoryHost, TracksPinnedMemory) {
  sim::Simulator sim;
  sim::Host h(sim, sim::HostConfig{});
  EXPECT_DOUBLE_EQ(h.memory_in_use(), 0.0);
  sim::JobId a = h.submit(100.0, 3e8, sim::kBackgroundOwner);
  h.submit(5.0, 2e8, sim::kBackgroundOwner);
  EXPECT_DOUBLE_EQ(h.memory_in_use(), 5e8);
  sim.run_until(20.0);  // the 5 cpu-s job (shared: done at 10) releases
  EXPECT_DOUBLE_EQ(h.memory_in_use(), 3e8);
  h.kill(a);
  EXPECT_DOUBLE_EQ(h.memory_in_use(), 0.0);
  EXPECT_THROW(h.submit(1.0, -1.0, sim::kBackgroundOwner),
               std::invalid_argument);
}

TEST(MemoryMonitor, ReportsFreeMemory) {
  sim::NetworkSim net(mem_star());
  auto h1 = net.topology().find_node("h0").value();
  net.host(h1).submit(1e9, 6e8, sim::kBackgroundOwner);
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(4.0);
  auto snap = remos.snapshot();
  EXPECT_DOUBLE_EQ(snap.free_memory(h1), 4e8);
  auto h2 = net.topology().find_node("h1").value();
  EXPECT_DOUBLE_EQ(snap.free_memory(h2), 1e9);
}

TEST(MemoryMonitor, OversubscriptionClampsToZero) {
  sim::NetworkSim net(mem_star());
  auto h1 = net.topology().find_node("h0").value();
  net.host(h1).submit(1e9, 2e9, sim::kBackgroundOwner);  // 2 GB on a 1 GB node
  remos::Remos remos(net);
  remos.start();
  auto snap = remos.snapshot();
  EXPECT_DOUBLE_EQ(snap.free_memory(h1), 0.0);
}

TEST(MemorySelect, RequirementFiltersNodes) {
  auto g = mem_star();
  remos::NetworkSnapshot snap(g);
  snap.set_free_memory(1, 1e8);  // h0 nearly full
  snap.set_free_memory(2, 1e8);  // h1 nearly full
  select::SelectionOptions opt;
  opt.num_nodes = 2;
  opt.min_free_memory_bytes = 5e8;
  auto r = select::select_balanced(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes, (std::vector<topo::NodeId>{3, 4}));
  opt.num_nodes = 3;
  EXPECT_FALSE(select::select_balanced(snap, opt).feasible);
  opt.min_free_memory_bytes = -1.0;
  EXPECT_THROW(select::select_balanced(snap, opt), std::invalid_argument);
}

TEST(MemorySelect, UnmodelledNodesNeverSatisfyRequirement) {
  auto g = topo::star(3);  // no memory modelled
  remos::NetworkSnapshot snap(g);
  select::SelectionOptions opt;
  opt.num_nodes = 1;
  opt.min_free_memory_bytes = 1.0;
  EXPECT_FALSE(select::select_max_compute(snap, opt).feasible);
  opt.min_free_memory_bytes = 0.0;
  EXPECT_TRUE(select::select_max_compute(snap, opt).feasible);
}

TEST(MemoryLoadGen, JobsPinMemory) {
  sim::NetworkSim net(mem_star());
  load::LoadGenConfig cfg;
  cfg.mean_interarrival = 2.0;
  cfg.mean_memory_bytes = 1e8;
  load::HostLoadGenerator gen(net, cfg, util::Rng(3));
  gen.start();
  net.sim().run_until(300.0);
  double pinned = 0.0;
  for (auto n : net.topology().compute_nodes())
    pinned += net.host(n).memory_in_use();
  EXPECT_GT(pinned, 0.0);
}

TEST(MemoryParse, NodeOptionAndRoundTrip) {
  auto g = topo::parse_topology(
      "node sw router\n"
      "node big compute memory=2GB\n"
      "node small compute memory=512MB tags=alpha\n"
      "link sw big 100Mbps\nlink sw small 100Mbps\n");
  EXPECT_DOUBLE_EQ(g.node(g.find_node("big").value()).memory_bytes, 2e9);
  EXPECT_DOUBLE_EQ(g.node(g.find_node("small").value()).memory_bytes, 512e6);
  auto g2 = topo::parse_topology(topo::format_topology(g));
  EXPECT_DOUBLE_EQ(g2.node(g2.find_node("big").value()).memory_bytes, 2e9);
  EXPECT_DOUBLE_EQ(topo::parse_bytes("64KB"), 64e3);
  EXPECT_DOUBLE_EQ(topo::parse_bytes("100B"), 100.0);
  EXPECT_THROW(topo::parse_bytes("100"), topo::ParseError);
  EXPECT_THROW(topo::parse_bytes("0MB"), topo::ParseError);
}

TEST(MemoryEndToEnd, SelectionAvoidsMemoryPressuredNodes) {
  // Background jobs pin lots of memory on two nodes; a memory-demanding
  // placement must avoid them even though their cpu load is similar.
  auto g = mem_star(1e9);
  sim::NetworkSim net(std::move(g));
  auto h0 = net.topology().find_node("h0").value();
  auto h1 = net.topology().find_node("h1").value();
  net.host(h0).submit(1e9, 9e8, sim::kBackgroundOwner);
  net.host(h1).submit(1e9, 9e8, sim::kBackgroundOwner);
  remos::Remos remos(net);
  remos.start();
  net.sim().run_until(4.0);
  select::SelectionOptions opt;
  opt.num_nodes = 2;
  opt.min_free_memory_bytes = 5e8;
  auto r = select::select_balanced(remos.snapshot(), opt);
  ASSERT_TRUE(r.feasible);
  for (auto n : r.nodes) {
    EXPECT_NE(n, h0);
    EXPECT_NE(n, h1);
  }
}

}  // namespace
}  // namespace netsel
