#include <gtest/gtest.h>

#include "api/migration.hpp"
#include "topo/generators.hpp"

namespace netsel::api {
namespace {

appsim::LooselySyncConfig long_job(int nodes, int iterations) {
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = nodes;
  cfg.iterations = iterations;
  cfg.phases = {appsim::PhaseSpec{1.0, 0.0, appsim::CommPattern::None}};
  return cfg;
}

TEST(AppMigration, MovesAtIterationBoundary) {
  sim::NetworkSim net(topo::testbed());
  appsim::LooselySynchronousApp app(net, long_job(2, 10));
  auto m1 = net.topology().find_node("m-1").value();
  auto m2 = net.topology().find_node("m-2").value();
  auto m3 = net.topology().find_node("m-3").value();
  auto m4 = net.topology().find_node("m-4").value();
  app.start({m1, m2});
  net.sim().run_until(2.5);  // mid-iteration 3
  app.migrate({m3, m4}, 0.0);
  EXPECT_EQ(app.migrations_completed(), 0);
  net.sim().run_until(3.5);  // boundary at t=3 applies it
  EXPECT_EQ(app.migrations_completed(), 1);
  // New nodes carry the app's jobs now.
  EXPECT_EQ(net.host(m3).active_jobs(), 1);
  EXPECT_EQ(net.host(m1).active_jobs(), 0);
  net.sim().run_until(60.0);
  ASSERT_TRUE(app.finished());
  EXPECT_DOUBLE_EQ(app.elapsed(), 10.0);  // free migration, same speed
}

TEST(AppMigration, StateTransferCostsTime) {
  sim::NetworkSim net(topo::testbed());
  appsim::LooselySynchronousApp app(net, long_job(2, 10));
  auto m1 = net.topology().find_node("m-1").value();
  auto m2 = net.topology().find_node("m-2").value();
  auto m3 = net.topology().find_node("m-3").value();
  app.start({m1, m2});
  net.sim().run_until(0.5);
  // Move only rank 0; 12.5 MB of state = 1 s on a 100 Mbps path.
  app.migrate({m3, m2}, 12.5e6);
  net.sim().run_until(100.0);
  ASSERT_TRUE(app.finished());
  EXPECT_NEAR(app.elapsed(), 10.0 + 1.0, 1e-6);
}

TEST(AppMigration, SecondRequestReplacesFirst) {
  sim::NetworkSim net(topo::testbed());
  appsim::LooselySynchronousApp app(net, long_job(2, 5));
  auto m1 = net.topology().find_node("m-1").value();
  auto m2 = net.topology().find_node("m-2").value();
  auto m3 = net.topology().find_node("m-3").value();
  auto m4 = net.topology().find_node("m-4").value();
  app.start({m1, m2});
  net.sim().run_until(0.2);
  app.migrate({m3, m2}, 0.0);
  app.migrate({m4, m2}, 0.0);  // replaces the pending request
  net.sim().run_until(1.5);
  EXPECT_EQ(app.migrations_completed(), 1);
  EXPECT_EQ(net.host(m4).active_jobs(), 1);
  EXPECT_EQ(net.host(m3).active_jobs(), 0);
}

TEST(AppMigration, Validation) {
  sim::NetworkSim net(topo::testbed());
  appsim::LooselySynchronousApp app(net, long_job(2, 5));
  EXPECT_THROW(app.migrate({0}, 0.0), std::invalid_argument);  // wrong size
  auto m1 = net.topology().find_node("m-1").value();
  auto m2 = net.topology().find_node("m-2").value();
  EXPECT_THROW(app.migrate({m1, m2}, -1.0), std::invalid_argument);
}

struct ControllerFixture : ::testing::Test {
  sim::NetworkSim net{topo::testbed()};
  remos::Remos remos{net};

  topo::NodeId host(const char* name) {
    return net.topology().find_node(name).value();
  }
};

TEST_F(ControllerFixture, MigratesAwayFromHotspot) {
  remos.start();
  appsim::LooselySynchronousApp app(net, long_job(4, 400));
  app.start({host("m-1"), host("m-2"), host("m-3"), host("m-4")});

  MigrationPolicy policy;
  policy.check_interval = 10.0;
  policy.improvement_threshold = 0.5;
  policy.state_bytes_per_node = 0.0;
  policy.cooldown = 30.0;
  MigrationController ctl(remos, app, policy);
  ctl.start();

  // At t=50 a heavy external job lands on m-1 and stays.
  net.sim().schedule_at(50.0, [&] {
    net.host(host("m-1")).submit(1e9, sim::kBackgroundOwner);
    net.host(host("m-1")).submit(1e9, sim::kBackgroundOwner);
    net.host(host("m-1")).submit(1e9, sim::kBackgroundOwner);
  });

  net.sim().run_until(1000.0);
  ASSERT_TRUE(app.finished());
  EXPECT_GE(ctl.migrations_triggered(), 1);
  EXPECT_GT(ctl.checks_performed(), 3);
  // With migration the 3x hotspot only hurts briefly: well under the
  // 4x-slowdown-from-t=50 worst case (400 + ~50*3 = 1450 range), and the
  // tail should run at full speed.
  EXPECT_LT(app.elapsed(), 520.0);
}

TEST_F(ControllerFixture, NoMigrationWithoutCause) {
  remos.start();
  appsim::LooselySynchronousApp app(net, long_job(4, 50));
  app.start({host("m-1"), host("m-2"), host("m-3"), host("m-4")});
  MigrationPolicy policy;
  policy.check_interval = 5.0;
  MigrationController ctl(remos, app, policy);
  ctl.start();
  net.sim().run_until(200.0);
  ASSERT_TRUE(app.finished());
  EXPECT_EQ(ctl.migrations_triggered(), 0);
  EXPECT_DOUBLE_EQ(app.elapsed(), 50.0);
}

TEST_F(ControllerFixture, ExcludesOwnLoadFromDecision) {
  // The app itself loads its nodes; without owner exclusion the controller
  // would see load 1.0 on its own nodes and thrash toward "idle" ones.
  remos.start();
  appsim::LooselySynchronousApp app(net, long_job(4, 100));
  app.start({host("m-1"), host("m-2"), host("m-3"), host("m-4")});
  MigrationPolicy policy;
  policy.check_interval = 5.0;
  policy.improvement_threshold = 0.2;  // aggressive: would thrash if buggy
  MigrationController ctl(remos, app, policy);
  ctl.start();
  net.sim().run_until(500.0);
  ASSERT_TRUE(app.finished());
  EXPECT_EQ(ctl.migrations_triggered(), 0)
      << "own load must not look like competing load";
}

TEST_F(ControllerFixture, CooldownLimitsFrequency) {
  remos.start();
  appsim::LooselySynchronousApp app(net, long_job(2, 300));
  app.start({host("m-1"), host("m-2")});
  MigrationPolicy policy;
  policy.check_interval = 5.0;
  policy.cooldown = 1e9;  // at most one migration ever
  policy.improvement_threshold = 0.1;
  policy.state_bytes_per_node = 0.0;
  MigrationController ctl(remos, app, policy);
  ctl.start();
  // Load the app's nodes repeatedly; only one migration may fire.
  net.sim().schedule_at(20.0, [&] {
    net.host(host("m-1")).submit(1e9, sim::kBackgroundOwner);
    net.host(host("m-1")).submit(1e9, sim::kBackgroundOwner);
  });
  net.sim().schedule_at(120.0, [&] {
    net.host(host("m-3")).submit(1e9, sim::kBackgroundOwner);
  });
  net.sim().run_until(2000.0);
  ASSERT_TRUE(app.finished());
  EXPECT_LE(ctl.migrations_triggered(), 1);
}

TEST_F(ControllerFixture, PolicyValidation) {
  appsim::LooselySynchronousApp app(net, long_job(2, 5));
  MigrationPolicy bad;
  bad.check_interval = 0.0;
  EXPECT_THROW(MigrationController(remos, app, bad), std::invalid_argument);
  bad = MigrationPolicy{};
  bad.improvement_threshold = -0.1;
  EXPECT_THROW(MigrationController(remos, app, bad), std::invalid_argument);
}

TEST_F(ControllerFixture, DoubleStartIsNoOp) {
  remos.start();
  appsim::LooselySynchronousApp app(net, long_job(2, 100));
  app.start({host("m-1"), host("m-2")});
  MigrationPolicy policy;
  policy.check_interval = 5.0;
  MigrationController ctl(remos, app, policy);
  ctl.start();
  ctl.start();  // must not schedule a second check chain
  net.sim().run_until(21.0);
  EXPECT_EQ(ctl.checks_performed(), 4);  // t = 5, 10, 15, 20 and nothing else
}

TEST_F(ControllerFixture, StopHaltsChecks) {
  remos.start();
  appsim::LooselySynchronousApp app(net, long_job(2, 100));
  app.start({host("m-1"), host("m-2")});
  MigrationPolicy policy;
  policy.check_interval = 5.0;
  MigrationController ctl(remos, app, policy);
  ctl.start();
  net.sim().run_until(20.0);
  ctl.stop();
  int checks = ctl.checks_performed();
  net.sim().run_until(100.0);
  EXPECT_EQ(ctl.checks_performed(), checks);
}

}  // namespace
}  // namespace netsel::api
