#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace netsel::sim {
namespace {

struct Net {
  topo::TopologyGraph g;
  Simulator sim;
  topo::RoutingTable routes;
  Network net;

  explicit Net(topo::TopologyGraph graph, NetworkConfig cfg = {})
      : g(std::move(graph)), routes(g), net(sim, g, routes, cfg) {}
};

topo::NodeId host(const Net& n, const std::string& name) {
  return n.g.find_node(name).value();
}

TEST(Network, SingleFlowGetsFullBottleneck) {
  Net n(topo::star(2));
  double done_at = -1.0;
  // 100 Mbps path, 25 MB => 2 s.
  n.net.start_flow(host(n, "h0"), host(n, "h1"), 25e6, kBackgroundOwner,
                   [&](FlowId) { done_at = n.sim.now(); });
  n.sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(Network, TwoFlowsOnSameLinkShareFairly) {
  Net n(topo::star(2));
  double a = -1, b = -1;
  // Both h0->h1: share h0's uplink 50/50. 25 MB each at 50 Mbps = 4 s.
  n.net.start_flow(host(n, "h0"), host(n, "h1"), 25e6, kBackgroundOwner,
                   [&](FlowId) { a = n.sim.now(); });
  n.net.start_flow(host(n, "h0"), host(n, "h1"), 25e6, kBackgroundOwner,
                   [&](FlowId) { b = n.sim.now(); });
  n.sim.run();
  EXPECT_NEAR(a, 4.0, 1e-9);
  EXPECT_NEAR(b, 4.0, 1e-9);
}

TEST(Network, OppositeDirectionsDoNotContend) {
  // Full-duplex: h0->h1 and h1->h0 use different link directions.
  Net n(topo::star(2));
  double a = -1, b = -1;
  n.net.start_flow(host(n, "h0"), host(n, "h1"), 25e6, kBackgroundOwner,
                   [&](FlowId) { a = n.sim.now(); });
  n.net.start_flow(host(n, "h1"), host(n, "h0"), 25e6, kBackgroundOwner,
                   [&](FlowId) { b = n.sim.now(); });
  n.sim.run();
  EXPECT_NEAR(a, 2.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
}

TEST(Network, MaxMinUnbottleneckedFlowGetsLeftover) {
  // Dumbbell with 10 Mbps bottleneck: flow X crosses it, flow Y stays on
  // the left switch. Y is limited only by the 100 Mbps access links; max-min
  // gives X 10 Mbps and Y... wait, Y shares L0's uplink with X.
  // X: L0 -> R0 (crosses bottleneck), Y: L0 -> L1.
  // L0 uplink carries both (100 Mbps): equal split would be 50/50, but X is
  // frozen at 10 by the bottleneck, so Y gets 90.
  Net n(topo::dumbbell(2, 1, topo::k100Mbps, 10e6));
  FlowId x = n.net.start_flow(host(n, "L0"), host(n, "R0"), 1e9, kBackgroundOwner);
  FlowId y = n.net.start_flow(host(n, "L0"), host(n, "L1"), 1e9, kBackgroundOwner);
  EXPECT_NEAR(n.net.flow_rate(x), 10e6, 1.0);
  EXPECT_NEAR(n.net.flow_rate(y), 90e6, 1.0);
}

TEST(Network, LateFlowCausesReshare) {
  Net n(topo::star(2));
  double a = -1, b = -1;
  // A: 25 MB at t=0. B: 12.5 MB at t=1.
  // 0..1: A alone at 100 Mbps, ships 12.5 MB.
  // 1..3: both at 50 Mbps; B ships its 12.5 MB by t=3; A ships 12.5 MB too.
  // A done exactly at 3 as well.
  n.net.start_flow(host(n, "h0"), host(n, "h1"), 25e6, kBackgroundOwner,
                   [&](FlowId) { a = n.sim.now(); });
  n.sim.schedule_at(1.0, [&] {
    n.net.start_flow(host(n, "h0"), host(n, "h1"), 12.5e6, kBackgroundOwner,
                     [&](FlowId) { b = n.sim.now(); });
  });
  n.sim.run();
  EXPECT_NEAR(a, 3.0, 1e-6);
  EXPECT_NEAR(b, 3.0, 1e-6);
}

TEST(Network, CancelFlowReturnsRemainingAndFreesBandwidth) {
  Net n(topo::star(2));
  bool a_completed = false;
  FlowId a = n.net.start_flow(host(n, "h0"), host(n, "h1"), 100e6,
                              kBackgroundOwner, [&](FlowId) { a_completed = true; });
  FlowId b = n.net.start_flow(host(n, "h0"), host(n, "h1"), 100e6,
                              kBackgroundOwner);
  n.sim.run_until(2.0);  // each has shipped 12.5 MB at 50 Mbps
  double left = n.net.cancel_flow(a);
  EXPECT_NEAR(left, 100e6 - 12.5e6, 1.0);
  EXPECT_FALSE(n.net.is_active(a));
  EXPECT_NEAR(n.net.flow_rate(b), 100e6, 1.0) << "b should get full link";
  n.sim.run();
  EXPECT_FALSE(a_completed);
  EXPECT_THROW(n.net.cancel_flow(a), std::invalid_argument);
}

TEST(Network, LocalDeliveryCompletesImmediately) {
  Net n(topo::star(2));
  bool done = false;
  n.net.start_flow(host(n, "h0"), host(n, "h0"), 1e9, kBackgroundOwner,
                   [&](FlowId) { done = true; });
  n.sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(n.sim.now(), 0.0);
}

TEST(Network, HopLatencyDelaysCompletion) {
  NetworkConfig cfg;
  cfg.hop_latency = 0.1;
  Net n(topo::star(2), cfg);
  double done_at = -1.0;
  // 2 hops: latency 0.2 in parallel with a 2 s transfer -> 2 s dominates.
  n.net.start_flow(host(n, "h0"), host(n, "h1"), 25e6, kBackgroundOwner,
                   [&](FlowId) { done_at = n.sim.now(); });
  n.sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
  // A tiny transfer is latency-bound.
  done_at = -1.0;
  n.net.start_flow(host(n, "h0"), host(n, "h1"), 8.0, kBackgroundOwner,
                   [&](FlowId) { done_at = n.sim.now(); });
  n.sim.run();
  EXPECT_NEAR(done_at, 2.0 + 0.2, 1e-6);
}

TEST(Network, LinkUtilisationTracksFlows) {
  Net n(topo::testbed());
  topo::NodeId m1 = host(n, "m-1");
  topo::NodeId m13 = host(n, "m-13");
  FlowId f = n.net.start_flow(m1, m13, 1e9, kBackgroundOwner);
  double rate = n.net.flow_rate(f);
  EXPECT_NEAR(rate, 100e6, 1.0);
  auto links = n.routes.route(m1, m13);
  auto nodes = n.routes.route_nodes(m1, m13);
  for (std::size_t i = 0; i < links.size(); ++i) {
    bool fwd = n.g.link(links[i]).a == nodes[i];
    EXPECT_NEAR(n.net.link_used_bw(links[i], fwd), rate, 1.0);
    EXPECT_NEAR(n.net.link_used_bw(links[i], !fwd), 0.0, 1e-9);
    EXPECT_EQ(n.net.link_flow_count(links[i], fwd), 1);
  }
}

TEST(Network, UsedBwExcludingOwner) {
  Net n(topo::star(3));
  topo::NodeId h0 = host(n, "h0"), h1 = host(n, "h1");
  n.net.start_flow(h0, h1, 1e9, /*owner=*/5);
  n.net.start_flow(h0, h1, 1e9, kBackgroundOwner);
  auto l = n.routes.route(h0, h1)[0];
  bool fwd = n.g.link(l).a == h0;
  EXPECT_NEAR(n.net.link_used_bw(l, fwd), 100e6, 1.0);
  EXPECT_NEAR(n.net.link_used_bw_excluding(l, fwd, 5), 50e6, 1.0);
}

TEST(Network, AtmLinkGivesHigherCrossRate) {
  // gibraltar--suez is 155 Mbps: two flows m-7 -> m-13 / m-8 -> m-14 share
  // it at 77.5 each, below their 100 Mbps access limits.
  Net n(topo::testbed());
  FlowId f1 = n.net.start_flow(host(n, "m-7"), host(n, "m-13"), 1e9, 0);
  FlowId f2 = n.net.start_flow(host(n, "m-8"), host(n, "m-14"), 1e9, 0);
  EXPECT_NEAR(n.net.flow_rate(f1), 77.5e6, 1.0);
  EXPECT_NEAR(n.net.flow_rate(f2), 77.5e6, 1.0);
}

TEST(Network, ManyFlowsConservation) {
  // Property: on any link direction, the sum of flow rates never exceeds
  // capacity, and every flow has a strictly positive rate.
  Net n(topo::testbed());
  util::Rng rng(99);
  auto hosts = n.g.compute_nodes();
  std::vector<FlowId> flows;
  for (int i = 0; i < 40; ++i) {
    auto a = hosts[static_cast<std::size_t>(rng.uniform_int(0, 17))];
    auto b = hosts[static_cast<std::size_t>(rng.uniform_int(0, 17))];
    if (a == b) continue;
    flows.push_back(n.net.start_flow(a, b, 1e9, kBackgroundOwner));
  }
  for (FlowId f : flows) EXPECT_GT(n.net.flow_rate(f), 0.0);
  for (std::size_t l = 0; l < n.g.link_count(); ++l) {
    for (bool fwd : {true, false}) {
      auto id = static_cast<topo::LinkId>(l);
      EXPECT_LE(n.net.link_used_bw(id, fwd),
                n.net.link_capacity(id, fwd) * (1.0 + 1e-9));
    }
  }
}

TEST(Network, MaxMinNoFlowCanBeRaisedWithoutHurtingSmaller) {
  // Max-min certificate: every flow crosses at least one saturated link
  // direction where it has the (joint) largest rate.
  Net n(topo::dumbbell(3, 3, topo::k100Mbps, 60e6));
  std::vector<FlowId> flows;
  flows.push_back(n.net.start_flow(host(n, "L0"), host(n, "R0"), 1e9, 0));
  flows.push_back(n.net.start_flow(host(n, "L1"), host(n, "R1"), 1e9, 0));
  flows.push_back(n.net.start_flow(host(n, "L0"), host(n, "L1"), 1e9, 0));
  flows.push_back(n.net.start_flow(host(n, "R2"), host(n, "R0"), 1e9, 0));
  auto cross = [&](FlowId f) { return n.net.flow_rate(f); };
  // Bottleneck flows share 60 Mbps: 30 each.
  EXPECT_NEAR(cross(flows[0]), 30e6, 1.0);
  EXPECT_NEAR(cross(flows[1]), 30e6, 1.0);
  // L0->L1 limited by L0 uplink shared with flow 0: 70 remaining.
  EXPECT_NEAR(cross(flows[2]), 70e6, 1.0);
  // R2->R0 shares R0 downlink with flow 0: gets 70.
  EXPECT_NEAR(cross(flows[3]), 70e6, 1.0);
}

TEST(Network, RemainingBytesSettles) {
  Net n(topo::star(2));
  FlowId f = n.net.start_flow(host(n, "h0"), host(n, "h1"), 100e6,
                              kBackgroundOwner);
  n.sim.run_until(1.0);
  EXPECT_NEAR(n.net.remaining_bytes(f), 100e6 - 12.5e6, 1.0);
}

TEST(Network, Rejections) {
  Net n(topo::star(2));
  EXPECT_THROW(
      n.net.start_flow(host(n, "h0"), host(n, "h1"), 0.0, kBackgroundOwner),
      std::invalid_argument);
  EXPECT_THROW(n.net.flow_rate(123), std::invalid_argument);
  EXPECT_THROW(n.net.remaining_bytes(123), std::invalid_argument);
  NetworkConfig bad;
  bad.hop_latency = -1.0;
  EXPECT_THROW(Net nn(topo::star(2), bad), std::invalid_argument);
}

}  // namespace
}  // namespace netsel::sim
