#include "sim/network_sim.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "topo/generators.hpp"

namespace netsel::sim {
namespace {

TEST(NetworkSimFacade, HostsExistOnlyForComputeNodes) {
  NetworkSim net(topo::testbed());
  for (std::size_t i = 0; i < net.topology().node_count(); ++i) {
    auto id = static_cast<topo::NodeId>(i);
    EXPECT_EQ(net.has_host(id), net.topology().is_compute(id));
  }
  auto panama = net.topology().find_node("panama").value();
  EXPECT_THROW(net.host(panama), std::invalid_argument);
  auto m1 = net.topology().find_node("m-1").value();
  EXPECT_EQ(net.host(m1).name(), "m-1");
}

TEST(NetworkSimFacade, OwnerTagsAreUniqueAndNonBackground) {
  NetworkSim net(topo::star(2));
  OwnerTag a = net.new_owner();
  OwnerTag b = net.new_owner();
  EXPECT_NE(a, kBackgroundOwner);
  EXPECT_NE(b, kBackgroundOwner);
  EXPECT_NE(a, b);
}

TEST(NetworkSimFacade, NodeCapacityScalesHostConfig) {
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto fast = g.add_compute("fast", 4.0);
  auto slow = g.add_compute("slow", 1.0);
  g.add_link(sw, fast, 100e6);
  g.add_link(sw, slow, 100e6);
  NetworkSimConfig cfg;
  cfg.host.capacity = 2.0;  // base capacity multiplies node capacity
  NetworkSim net(std::move(g), cfg);
  EXPECT_DOUBLE_EQ(net.host(fast).capacity(), 8.0);
  EXPECT_DOUBLE_EQ(net.host(slow).capacity(), 2.0);
}

TEST(NetworkSimFacade, ValidatesTopologyOnConstruction) {
  topo::TopologyGraph g;
  g.add_compute("isolated-a");
  g.add_compute("isolated-b");
  EXPECT_THROW(NetworkSim net(std::move(g)), std::invalid_argument);
}

TEST(NetworkSimFacade, RoutesAndNetworkShareTheClock) {
  NetworkSim net(topo::star(3));
  auto h0 = net.topology().find_node("h0").value();
  auto h1 = net.topology().find_node("h1").value();
  double job_done = -1.0, flow_done = -1.0;
  net.host(h0).submit(3.0, kBackgroundOwner,
                      [&](JobId) { job_done = net.sim().now(); });
  net.network().start_flow(h0, h1, 25e6, kBackgroundOwner,
                           [&](FlowId) { flow_done = net.sim().now(); });
  net.sim().run();
  EXPECT_DOUBLE_EQ(job_done, 3.0);
  EXPECT_NEAR(flow_done, 2.0, 1e-9);
}

TEST(Conservation, SerialJobsConserveWork) {
  // Property: with jobs running back to back (never concurrent), the total
  // completion time equals the sum of demands exactly.
  NetworkSim net(topo::star(1));
  auto h = net.topology().find_node("h0").value();
  util::Rng rng(17);
  double total = 0.0;
  std::function<void()> submit_next = [&] {
    if (total >= 100.0) return;
    double demand = rng.uniform(0.1, 5.0);
    total += demand;
    net.host(h).submit(demand, kBackgroundOwner, [&](JobId) { submit_next(); });
  };
  submit_next();
  net.sim().run();
  EXPECT_NEAR(net.sim().now(), total, 1e-6);
}

TEST(Conservation, ConcurrentJobsConserveAggregateWork) {
  // Property: processor sharing never creates or destroys work — the host
  // finishes N jobs totalling W reference-seconds exactly at t = W (single
  // unit-capacity host, all jobs submitted at t=0).
  NetworkSim net(topo::star(1));
  auto h = net.topology().find_node("h0").value();
  util::Rng rng(18);
  double total = 0.0;
  int remaining = 25;
  for (int i = 0; i < 25; ++i) {
    double demand = rng.uniform(0.5, 8.0);
    total += demand;
    net.host(h).submit(demand, kBackgroundOwner, [&](JobId) { --remaining; });
  }
  net.sim().run();
  EXPECT_EQ(remaining, 0);
  EXPECT_NEAR(net.sim().now(), total, 1e-6);
}

TEST(Conservation, FlowBytesConservedThroughReshares) {
  // Property: however rates re-share as flows come and go, each flow
  // completes after delivering exactly its bytes — total simulated time
  // matches a hand-computed fluid schedule for a deterministic case, and
  // all completions happen.
  NetworkSim net(topo::star(2));
  auto h0 = net.topology().find_node("h0").value();
  auto h1 = net.topology().find_node("h1").value();
  int done = 0;
  // Three staggered transfers on the same 100 Mbps path (12.5 MB/s):
  // t=0: A (25 MB). t=1: B (25 MB). t=2: C (12.5 MB).
  // 0-1: A alone ships 12.5. 1-2: A,B ship 6.25 each.
  // 2-..: three flows at ~4.1667 MB/s each; C (12.5) finishes at t=5;
  // A has 25-12.5-6.25-12.5=... A: 25-12.5-6.25 = 6.25 left at t=2, ships
  // 12.5 by t=5 -> done at t? A finishes when remaining 6.25 at 4.1667/s =
  // 1.5 -> t=3.5. Then B (12.5 left at t=3.5 minus 6.25 shipped 2..3.5) ...
  // Simply assert: all three complete and the final completion matches the
  // work-conservation bound: total 62.5 MB over a 12.5 MB/s link = 5 s.
  net.network().start_flow(h0, h1, 25e6, kBackgroundOwner,
                           [&](FlowId) { ++done; });
  net.sim().schedule_at(1.0, [&] {
    net.network().start_flow(h0, h1, 25e6, kBackgroundOwner,
                             [&](FlowId) { ++done; });
  });
  net.sim().schedule_at(2.0, [&] {
    net.network().start_flow(h0, h1, 12.5e6, kBackgroundOwner,
                             [&](FlowId) { ++done; });
  });
  net.sim().run();
  EXPECT_EQ(done, 3);
  EXPECT_NEAR(net.sim().now(), 5.0, 1e-6);
}

TEST(Conservation, RandomisedFlowChurnTerminates) {
  // Stress: random transfers between random hosts with occasional
  // cancellations; the event loop must drain with no flows left.
  NetworkSim net(topo::testbed());
  util::Rng rng(19);
  auto hosts = net.topology().compute_nodes();
  std::vector<FlowId> live;
  for (int i = 0; i < 200; ++i) {
    double at = rng.uniform(0.0, 50.0);
    net.sim().schedule_at(at, [&net, &rng, &hosts, &live] {
      auto a = hosts[static_cast<std::size_t>(rng.uniform_int(0, 17))];
      auto b = hosts[static_cast<std::size_t>(rng.uniform_int(0, 17))];
      if (a == b) return;
      live.push_back(net.network().start_flow(a, b, rng.uniform(1e5, 5e7),
                                              kBackgroundOwner));
      if (live.size() > 5 && rng.bernoulli(0.3)) {
        FlowId victim = live[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
        if (net.network().is_active(victim)) net.network().cancel_flow(victim);
      }
    });
  }
  net.sim().run();
  EXPECT_EQ(net.network().active_flows(), 0);
  for (std::size_t l = 0; l < net.topology().link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    EXPECT_DOUBLE_EQ(net.network().link_used_bw(id, true), 0.0);
    EXPECT_DOUBLE_EQ(net.network().link_used_bw(id, false), 0.0);
  }
}

}  // namespace
}  // namespace netsel::sim
