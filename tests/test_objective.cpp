#include "select/objective.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace netsel::select {
namespace {

TEST(BfsPath, StarPath) {
  auto g = topo::star(3);
  auto path = bfs_path(g, 1, 3);
  EXPECT_EQ(path.size(), 2u);
  EXPECT_TRUE(bfs_path(g, 1, 1).empty());
}

TEST(EvaluateSet, SingleNodeReportsNicAvailability) {
  // A size-1 set has no node pairs; the bandwidth figures report the node's
  // best incident link availability instead of the vacuous +inf minimum.
  auto g = topo::star(3);
  remos::NetworkSnapshot snap(g);
  snap.set_cpu(1, 0.5);
  auto ev = evaluate_set(snap, {1});
  EXPECT_TRUE(ev.connected);
  EXPECT_DOUBLE_EQ(ev.min_cpu, 0.5);
  EXPECT_DOUBLE_EQ(ev.min_pair_bw, 100e6);
  EXPECT_DOUBLE_EQ(ev.min_pair_bw_fraction, 1.0);
  EXPECT_DOUBLE_EQ(ev.balanced, 0.5);
}

TEST(EvaluateSet, PairBottleneckIsMinLinkOnPath) {
  auto g = topo::dumbbell(1, 1, 100e6, 10e6);
  remos::NetworkSnapshot snap(g);
  auto cn = g.compute_nodes();
  auto ev = evaluate_set(snap, cn);
  EXPECT_DOUBLE_EQ(ev.min_pair_bw, 10e6);
  EXPECT_DOUBLE_EQ(ev.min_pair_bw_fraction, 1.0);  // bottleneck at full cap
}

TEST(EvaluateSet, FractionUsesDynamicAvailability) {
  auto g = topo::star(3);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 25e6);  // h0's access link 25% available
  auto cn = g.compute_nodes();
  auto ev = evaluate_set(snap, cn);
  EXPECT_DOUBLE_EQ(ev.min_pair_bw, 25e6);
  EXPECT_DOUBLE_EQ(ev.min_pair_bw_fraction, 0.25);
}

TEST(EvaluateSet, BalancedUsesPriorities) {
  auto g = topo::star(2);
  remos::NetworkSnapshot snap(g);
  snap.set_cpu(1, 0.5);
  SelectionOptions opt;
  opt.cpu_priority = 2.0;
  auto ev = evaluate_set(snap, g.compute_nodes(), opt);
  // min(0.5/2, 1.0/1) = 0.25.
  EXPECT_DOUBLE_EQ(ev.balanced, 0.25);
}

TEST(EvaluateSet, MinCpuOverSet) {
  auto g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  snap.set_cpu(1, 0.8);
  snap.set_cpu(2, 0.3);
  snap.set_cpu(3, 0.9);
  auto ev = evaluate_set(snap, {1, 2, 3});
  EXPECT_DOUBLE_EQ(ev.min_cpu, 0.3);
}

TEST(EvaluateSet, Rejections) {
  auto g = topo::star(2);
  remos::NetworkSnapshot snap(g);
  EXPECT_THROW(evaluate_set(snap, {}), std::invalid_argument);
  EXPECT_THROW(evaluate_set(snap, {0}), std::invalid_argument);  // switch node
}

TEST(SteinerLinks, UnionOfPaths) {
  auto g = topo::testbed();
  std::vector<char> active(g.link_count(), 1);
  auto m1 = g.find_node("m-1").value();
  auto m2 = g.find_node("m-2").value();
  auto m13 = g.find_node("m-13").value();
  auto links = steiner_links(g, active, {m1, m2, m13});
  // Union: m1 & m2 access links, panama--gibraltar, gibraltar--suez, m13
  // access link = 5 links.
  EXPECT_EQ(links.size(), 5u);
}

TEST(SteinerLinks, RespectsMask) {
  auto g = topo::star(3);
  std::vector<char> active(g.link_count(), 1);
  active[0] = 0;  // h0's access link removed: h0 unreachable
  auto links = steiner_links(g, active, {1, 2});
  EXPECT_TRUE(links.empty());
  auto links23 = steiner_links(g, active, {2, 3});
  EXPECT_EQ(links23.size(), 2u);
}

TEST(EvaluateSet, HeterogeneousReferenceCapacity) {
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto slow = g.add_compute("slow", 1.0);
  auto fast = g.add_compute("fast", 4.0);
  g.add_link(sw, slow, 100e6);
  g.add_link(sw, fast, 100e6);
  remos::NetworkSnapshot snap(g);
  snap.set_cpu(fast, 0.5);  // half of a 4x node = 2 reference units
  SelectionOptions opt;
  opt.reference_cpu_capacity = 1.0;
  auto ev = evaluate_set(snap, {slow, fast}, opt);
  EXPECT_DOUBLE_EQ(ev.min_cpu, 1.0);  // the slow node at full availability
  EXPECT_DOUBLE_EQ(snap.cpu_reference(fast, 1.0), 2.0);
}

}  // namespace
}  // namespace netsel::select
