// Tests of the obs layer: metric primitives, the registry, exporters, and
// the two load-bearing contracts — concurrent counter updates are exact
// (exercised under TSan in CI), and enabling the registry never changes a
// single bit of any experiment result.

#include "obs/export.hpp"
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/table1.hpp"
#include "util/thread_pool.hpp"

namespace netsel::obs {
namespace {

/// Every test runs against the (process-global) registry: enable, reset,
/// and restore the disabled default afterwards so test order never matters.
struct ObsFixture : ::testing::Test {
  void SetUp() override {
    set_enabled(true);
    Registry::global().reset();
  }
  void TearDown() override {
    Registry::global().reset();
    set_enabled(false);
  }
};

using Obs = ObsFixture;

TEST_F(Obs, CounterCountsAndResets) {
  Counter& c = Registry::global().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  // Create-or-get: same name, same object.
  EXPECT_EQ(&c, &Registry::global().counter("test.counter"));
}

TEST_F(Obs, GaugeLastValueWins) {
  Gauge& g = Registry::global().gauge("test.gauge");
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(Obs, HistogramBucketsValuesCorrectly) {
  // Bounds are inclusive upper bounds with an implicit +inf overflow.
  Histogram& h =
      Registry::global().histogram("test.hist", {1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 100.0}) h.observe(v);
  auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0 (inclusive)
  EXPECT_EQ(counts[1], 1u);      // 1.5
  EXPECT_EQ(counts[2], 1u);      // 3.0
  EXPECT_EQ(counts[3], 1u);      // 100.0 -> overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
}

TEST_F(Obs, HistogramEmptyReportsZeros) {
  Histogram& h = Registry::global().histogram("test.empty", {1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST_F(Obs, BucketHelpers) {
  auto e = exp_buckets(1.0, 2.0, 4);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[3], 8.0);
  auto l = linear_buckets(0.1, 0.1, 3);
  ASSERT_EQ(l.size(), 3u);
  EXPECT_NEAR(l[2], 0.3, 1e-12);
}

TEST_F(Obs, DisabledSitesAreNoOps) {
  Counter& c = Registry::global().counter("test.disabled.counter");
  Gauge& g = Registry::global().gauge("test.disabled.gauge");
  Histogram& h = Registry::global().histogram("test.disabled.hist", {1.0});
  set_enabled(false);
  c.inc();
  g.set(5.0);
  h.observe(0.5);
  {
    ScopedTimer t(h);
    Span span("test.disabled.span");
    EXPECT_FALSE(span.active());
    span.arg("k", "v");  // must be a harmless no-op
  }
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(Registry::global().spans().empty());
}

TEST_F(Obs, ResetKeepsReferencesValid) {
  Counter& c = Registry::global().counter("test.stable");
  c.inc(7);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc(3);  // the pre-reset reference must still reach the live object
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(&c, &Registry::global().counter("test.stable"));
}

TEST_F(Obs, SpanRecordsWallSimAndArgs) {
  {
    Span span("test.span", "testcat", 10.0);
    EXPECT_TRUE(span.active());
    span.arg("key", "value");
    span.sim_range(10.0, 25.0);
  }
  auto spans = Registry::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  const SpanRecord& rec = spans[0];
  EXPECT_EQ(rec.name, "test.span");
  EXPECT_EQ(rec.cat, "testcat");
  EXPECT_GE(rec.dur_us, 0.0);
  EXPECT_DOUBLE_EQ(rec.sim_begin, 10.0);
  EXPECT_DOUBLE_EQ(rec.sim_end, 25.0);
  ASSERT_EQ(rec.args.size(), 1u);
  EXPECT_EQ(rec.args[0].first, "key");
  EXPECT_EQ(rec.args[0].second, "value");
}

TEST_F(Obs, ScopedTimerObservesSeconds) {
  Histogram& h = Registry::global().histogram(
      "test.timer", exp_buckets(1e-9, 10.0, 12));
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
  EXPECT_LT(h.max(), 60.0);  // sanity: a no-op scope is not a minute long
}

TEST_F(Obs, ExportersRenderTheRegistry) {
  Registry::global().counter("export.counter").inc(5);
  Registry::global().gauge("export.gauge").set(2.5);
  Registry::global()
      .histogram("export.hist", {1.0, 2.0})
      .observe(1.5);
  {
    Span span("export.span", "exp");
    span.arg("app", "FFT \"1K\"");  // exercises JSON string escaping
  }
  const Registry& r = Registry::global();

  std::string text = to_text(r);
  EXPECT_NE(text.find("export.counter"), std::string::npos);
  EXPECT_NE(text.find("export.hist"), std::string::npos);

  std::string jl = to_json_lines(r);
  EXPECT_NE(jl.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(jl.find("\"name\":\"export.gauge\""), std::string::npos);

  std::string doc = to_json(r);
  EXPECT_NE(doc.find(kMetricsSchema), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"export.counter\": 5"), std::string::npos);

  std::string trace = to_chrome_trace(r);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("export.span"), std::string::npos);
  EXPECT_NE(trace.find("FFT \\\"1K\\\""), std::string::npos);
}

TEST_F(Obs, ConcurrentCounterUpdatesAreExact) {
  // The sharded counter's one job: absorb concurrent increments from pool
  // workers without losing any. CI runs this test under TSan too.
  Counter& c = Registry::global().counter("test.concurrent");
  Histogram& h = Registry::global().histogram(
      "test.concurrent.hist", exp_buckets(1.0, 2.0, 10));
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kIncsPerTask = 5000;
  util::ThreadPool pool(4);
  util::parallel_for(pool, kTasks, [&](std::size_t i) {
    for (std::uint64_t k = 0; k < kIncsPerTask; ++k) c.inc();
    h.observe(static_cast<double>(i % 7) + 0.5);
  });
  EXPECT_EQ(c.value(), kTasks * kIncsPerTask);
  EXPECT_EQ(h.count(), kTasks);
}

/// The tentpole contract: the whole Table-1 pipeline is bit-identical with
/// the registry enabled or disabled. Wall-clock fields are excluded — they
/// are documented as observability-only.
TEST_F(Obs, Table1ResultsBitIdenticalEnabledVsDisabled) {
  exp::Table1Options opt;
  opt.trials = 2;
  opt.seed = 424242;

  set_enabled(false);
  auto base = exp::run_table1(opt);
  set_enabled(true);
  Registry::global().reset();
  auto instrumented = exp::run_table1(opt);

  // The instrumented run must actually have recorded something — otherwise
  // this test would pass vacuously with the instrumentation compiled out.
  EXPECT_GT(Registry::global().counter("exp.trials").value(), 0u);
  EXPECT_GT(Registry::global().counter("select.selections").value(), 0u);
  EXPECT_GT(Registry::global().counter("sim.events").value(), 0u);

  ASSERT_EQ(base.size(), instrumented.size());
  for (std::size_t r = 0; r < base.size(); ++r) {
    EXPECT_EQ(base[r].app, instrumented[r].app);
    EXPECT_EQ(base[r].reference, instrumented[r].reference);
    for (std::size_t c = 0; c < 3; ++c) {
      for (auto pick : {&exp::MeasuredRow::random_sel,
                        &exp::MeasuredRow::auto_sel}) {
        const exp::MeasuredCell& a = (base[r].*pick)[c];
        const exp::MeasuredCell& b = (instrumented[r].*pick)[c];
        EXPECT_EQ(a.mean, b.mean);
        EXPECT_EQ(a.ci95, b.ci95);
        EXPECT_EQ(a.trials, b.trials);
        EXPECT_EQ(a.failures, b.failures);
      }
    }
  }
}

// --- Bucket-based quantile estimation --------------------------------------

TEST_F(Obs, QuantileFromBucketsExactOnDegenerateBuckets) {
  // One observation per unit-wide bucket: quantiles interpolate linearly
  // inside the bucket the rank lands in, and the min/max tighten the edge
  // buckets, so reference points are exact.
  Histogram& h = Registry::global().histogram(
      "test.quant.uniform", linear_buckets(1.0, 1.0, 9));
  for (int v = 1; v <= 10; ++v) h.observe(static_cast<double>(v));
  // p0 -> the observed min, p100 -> the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  // Rank 5 = exactly the 5th observation's bucket upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 9.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST_F(Obs, QuantileBoundedByBucketOfRank) {
  // 1000 exponentially distributed-ish values; the bucket estimate must
  // land inside the true value's bucket (the strongest guarantee a
  // bucketed estimator can give).
  Histogram& h = Registry::global().histogram("test.quant.exp",
                                              exp_buckets(1e-3, 2.0, 20));
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double v = 1e-3 * (1.0 + 0.01 * i) * (1 + i % 7);
    xs.push_back(v);
    h.observe(v);
  }
  std::sort(xs.begin(), xs.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact =
        xs[static_cast<std::size_t>(q * (xs.size() - 1))];
    const double est = h.quantile(q);
    // Same power-of-two bucket: within a factor of 2 of the exact value.
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
}

TEST_F(Obs, QuantileSingleValueAndEmpty) {
  Histogram& h =
      Registry::global().histogram("test.quant.single", {1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> 0
  h.observe(1.7);
  // All mass in one bucket with min == max == 1.7: every quantile is 1.7.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.7);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.7);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.7);
}

TEST_F(Obs, QuantileViewMatchesHistogram) {
  Histogram& h = Registry::global().histogram("test.quant.view",
                                              linear_buckets(10.0, 10.0, 5));
  for (double v : {5.0, 12.0, 33.0, 47.0, 61.0}) h.observe(v);
  for (const Registry::HistogramView& view :
       Registry::global().histograms()) {
    if (view.name != "test.quant.view") continue;
    for (double q : {0.0, 0.25, 0.5, 0.75, 1.0})
      EXPECT_DOUBLE_EQ(view.quantile(q), h.quantile(q)) << "q=" << q;
    return;
  }
  FAIL() << "view for test.quant.view not found";
}

}  // namespace
}  // namespace netsel::obs
