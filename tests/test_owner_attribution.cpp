// Tests for per-owner attribution through the whole measurement chain —
// host trackers, network accounting, monitor owner series, and Remos
// exclusion queries. This machinery is what keeps a migrating application
// from mistaking its own (stale-measured) load and traffic for competition;
// a time-misaligned exclusion caused controller thrashing during
// development, so the alignment is pinned down here.

#include <gtest/gtest.h>

#include "appsim/loosely_synchronous.hpp"
#include "remos/remos.hpp"
#include "topo/generators.hpp"

namespace netsel::remos {
namespace {

struct Fixture : ::testing::Test {
  sim::NetworkSim net{topo::testbed()};
  topo::NodeId m1 = net.topology().find_node("m-1").value();
  topo::NodeId m2 = net.topology().find_node("m-2").value();
};

TEST_F(Fixture, HostTracksOwnersSeparately) {
  sim::OwnerTag app = net.new_owner();
  net.host(m1).submit(1e9, app);
  net.host(m1).submit(1e9, sim::kBackgroundOwner);
  net.host(m1).submit(1e9, sim::kBackgroundOwner);
  net.sim().run_until(600.0);
  auto& h = net.host(m1);
  EXPECT_NEAR(h.load_average(), 3.0, 1e-2);
  EXPECT_NEAR(h.owner_load_average(app), 1.0, 1e-2);
  EXPECT_NEAR(h.owner_load_average(sim::kBackgroundOwner), 2.0, 1e-2);
  EXPECT_NEAR(h.owner_load_average(999), 0.0, 1e-12);
  auto owners = h.tracked_owners();
  EXPECT_EQ(owners.size(), 2u);
}

TEST_F(Fixture, OwnerLoadSumsToTotal) {
  sim::OwnerTag a = net.new_owner();
  sim::OwnerTag b = net.new_owner();
  net.host(m1).submit(40.0, a);
  net.host(m1).submit(80.0, b);
  net.host(m1).submit(1e9, sim::kBackgroundOwner);
  for (double t : {10.0, 60.0, 130.0, 400.0}) {
    net.sim().run_until(t);
    auto& h = net.host(m1);
    double sum = h.owner_load_average(a) + h.owner_load_average(b) +
                 h.owner_load_average(sim::kBackgroundOwner);
    EXPECT_NEAR(sum, h.load_average(), 1e-9) << "t=" << t;
  }
}

TEST_F(Fixture, NetworkOwnerUsage) {
  sim::OwnerTag app = net.new_owner();
  net.network().start_flow(m1, m2, 1e12, app);
  net.network().start_flow(m1, m2, 1e12, sim::kBackgroundOwner);
  auto l = net.routes().route(m1, m2)[0];
  bool fwd = net.topology().link(l).a == m1;
  EXPECT_NEAR(net.network().link_used_bw_by(l, fwd, app), 50e6, 1.0);
  EXPECT_NEAR(net.network().link_used_bw_by(l, fwd, sim::kBackgroundOwner),
              50e6, 1.0);
  auto owners = net.network().active_owners();
  EXPECT_EQ(owners.size(), 2u);
}

TEST_F(Fixture, MonitorRecordsOwnerSeries) {
  sim::OwnerTag app = net.new_owner();
  net.host(m1).submit(1e9, app);
  Monitor monitor(net);
  monitor.start();
  net.sim().run_until(10.0);
  const TimeSeries* series = monitor.owner_load_history(m1, app);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), monitor.load_history(m1).size());
  EXPECT_GT(series->latest().value, 0.0);
  EXPECT_EQ(monitor.owner_load_history(m1, 12345), nullptr);
}

TEST_F(Fixture, OwnerSeriesDecaysAfterActivityStops) {
  // Once seen, an owner keeps being recorded (zeros) so its series decays
  // instead of freezing at the last busy value.
  sim::OwnerTag app = net.new_owner();
  Monitor monitor(net);
  monitor.start();
  sim::JobId job = net.host(m1).submit(1e9, app);
  net.sim().run_until(300.0);
  net.host(m1).kill(job);
  net.sim().run_until(900.0);
  const TimeSeries* series = monitor.owner_load_history(m1, app);
  ASSERT_NE(series, nullptr);
  EXPECT_LT(series->latest().value, 0.01)
      << "owner load must decay after the job is gone";
}

TEST_F(Fixture, ExclusionIsTimeAligned) {
  // The poll at t=10 catches the app's burst; at query time the app is
  // idle. A live-value exclusion would subtract ~0 and leave the app's own
  // burst in the measurement; the aligned exclusion removes it fully.
  sim::OwnerTag app = net.new_owner();
  Remos remos(net, MonitorConfig{10.0, 60.0, {}});
  remos.start();
  // App traffic burst covering the t=10 poll, gone by t=12.
  net.sim().schedule_at(9.0, [&] {
    net.network().start_flow(m1, m2, 12.5e6 * 2.5, app);  // ~2.5 s at 100 Mbps
  });
  net.sim().run_until(13.0);
  ASSERT_EQ(net.network().active_flows(), 0) << "burst should be over";

  QueryOptions with;
  QueryOptions excl;
  excl.exclude_owner = app;
  auto l = net.routes().route(m1, m2)[0];
  auto snap_with = remos.snapshot(with);
  auto snap_excl = remos.snapshot(excl);
  // Without exclusion the stale measurement shows the link busy.
  EXPECT_LT(snap_with.bw(l), 1e6);
  // With aligned exclusion the link is (correctly) free.
  EXPECT_NEAR(snap_excl.bw(l), snap_excl.maxbw(l), 1e3);
}

TEST_F(Fixture, ExclusionDoesNotHideCompetingTraffic) {
  sim::OwnerTag app = net.new_owner();
  net.network().start_flow(m1, m2, 1e12, app);
  net.network().start_flow(m1, m2, 1e12, sim::kBackgroundOwner);
  Remos remos(net);
  remos.start();
  net.sim().run_until(4.0);
  QueryOptions excl;
  excl.exclude_owner = app;
  auto snap = remos.snapshot(excl);
  auto l = net.routes().route(m1, m2)[0];
  // Background flow (50 Mbps) must remain visible: available ~50, not 100.
  EXPECT_NEAR(snap.bw(l), 50e6, 2e6);
}

TEST_F(Fixture, RunningAppSeesItselfExcludedEndToEnd) {
  // A compute+comm application queries Remos about its own nodes: with
  // exclusion, cpu looks free and links look clean despite its activity.
  Remos remos(net);
  remos.start();
  appsim::LooselySyncConfig cfg;
  cfg.num_nodes = 2;
  cfg.iterations = 1000;
  cfg.phases = {appsim::PhaseSpec{1.0, 4e6, appsim::CommPattern::Ring}};
  appsim::LooselySynchronousApp app(net, cfg);
  app.start({m1, m2});
  net.sim().run_until(400.0);
  QueryOptions excl;
  excl.exclude_owner = app.owner();
  auto snap = remos.snapshot(excl);
  EXPECT_GT(snap.cpu(m1), 0.9);
  EXPECT_GT(snap.cpu(m2), 0.9);
  auto snap_raw = remos.snapshot();
  EXPECT_LT(snap_raw.cpu(m1), 0.7) << "raw measurement must see the app";
}

}  // namespace
}  // namespace netsel::remos
