#include "topo/parse.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"

namespace netsel::topo {
namespace {

constexpr const char* kSample = R"(
# A miniature testbed
node panama router
node suez switch
node m-1 compute capacity=1.0 tags=alpha
node m-2 compute capacity=2.5 tags=alpha,big
node m-3 compute            # defaults

link m-1 panama 100Mbps latency=0.05ms
link m-2 panama 100Mbps
link m-3 suez 10Mbps name=slowlink
link panama suez 155Mbps/55Mbps latency=1ms
)";

TEST(ParseBandwidth, Units) {
  EXPECT_DOUBLE_EQ(parse_bandwidth("100Mbps"), 100e6);
  EXPECT_DOUBLE_EQ(parse_bandwidth("2.5Gbps"), 2.5e9);
  EXPECT_DOUBLE_EQ(parse_bandwidth("64Kbps"), 64e3);
  EXPECT_DOUBLE_EQ(parse_bandwidth("800bps"), 800.0);
}

TEST(ParseBandwidth, Rejections) {
  EXPECT_THROW(parse_bandwidth("100"), ParseError);
  EXPECT_THROW(parse_bandwidth("fastMbps"), ParseError);
  EXPECT_THROW(parse_bandwidth("0Mbps"), ParseError);
  EXPECT_THROW(parse_bandwidth("-5Mbps"), ParseError);
}

TEST(ParseDuration, Units) {
  EXPECT_DOUBLE_EQ(parse_duration("1.5s"), 1.5);
  EXPECT_DOUBLE_EQ(parse_duration("200ms"), 0.2);
  EXPECT_DOUBLE_EQ(parse_duration("50us"), 50e-6);
}

TEST(ParseDuration, Rejections) {
  EXPECT_THROW(parse_duration("10"), ParseError);
  EXPECT_THROW(parse_duration("-1ms"), ParseError);
}

TEST(ParseTopology, SampleParses) {
  auto g = parse_topology(kSample);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.compute_node_count(), 3u);
  EXPECT_EQ(g.link_count(), 4u);
  auto m2 = g.find_node("m-2");
  ASSERT_TRUE(m2.has_value());
  EXPECT_DOUBLE_EQ(g.node(*m2).cpu_capacity, 2.5);
  EXPECT_TRUE(g.node(*m2).has_tag("big"));
  EXPECT_TRUE(g.node(*m2).has_tag("alpha"));
  // Asymmetric trunk with latency.
  const Link& trunk = g.link(3);
  EXPECT_DOUBLE_EQ(trunk.capacity_ab, 155e6);
  EXPECT_DOUBLE_EQ(trunk.capacity_ba, 55e6);
  EXPECT_DOUBLE_EQ(trunk.latency, 1e-3);
  // Named link.
  EXPECT_EQ(g.link(2).name, "slowlink");
  // Latency parsed on the first link.
  EXPECT_DOUBLE_EQ(g.link(0).latency, 0.05e-3);
}

TEST(ParseTopology, CommentsAndBlankLines) {
  auto g = parse_topology(
      "# leading comment\n\nnode a compute\nnode b compute\n"
      "link a b 10Mbps # trailing comment\n");
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(ParseTopology, ErrorsCarryLineNumbers) {
  try {
    parse_topology("node a compute\nnode b compute\nlink a c 10Mbps\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("unknown node 'c'"),
              std::string::npos);
  }
}

TEST(ParseTopology, Rejections) {
  EXPECT_THROW(parse_topology("frobnicate x\n"), ParseError);
  EXPECT_THROW(parse_topology("node a dishwasher\n"), ParseError);
  EXPECT_THROW(parse_topology("node a compute bogus\n"), ParseError);
  EXPECT_THROW(parse_topology("node a compute shoes=2\n"), ParseError);
  EXPECT_THROW(parse_topology("node a router extra\n"), ParseError);
  EXPECT_THROW(parse_topology("node a compute\nnode b compute\n"
                              "link a b 1Mbps/2Mbps/3Mbps\n"),
               ParseError);
  EXPECT_THROW(parse_topology("node a compute\nnode b compute\n"
                              "link a b 1Mbps color=red\n"),
               ParseError);
  // Graph-level violations surface from validate().
  EXPECT_THROW(parse_topology("node a compute\nnode b compute\n"),
               std::invalid_argument);
}

TEST(ParseTopology, RoundTripsThroughFormat) {
  auto g1 = parse_topology(kSample);
  std::string text = format_topology(g1);
  auto g2 = parse_topology(text);
  ASSERT_EQ(g1.node_count(), g2.node_count());
  ASSERT_EQ(g1.link_count(), g2.link_count());
  for (std::size_t i = 0; i < g1.node_count(); ++i) {
    auto id = static_cast<NodeId>(i);
    EXPECT_EQ(g1.node(id).name, g2.node(id).name);
    EXPECT_EQ(g1.node(id).kind, g2.node(id).kind);
    EXPECT_DOUBLE_EQ(g1.node(id).cpu_capacity, g2.node(id).cpu_capacity);
    EXPECT_EQ(g1.node(id).tags, g2.node(id).tags);
  }
  for (std::size_t l = 0; l < g1.link_count(); ++l) {
    auto id = static_cast<LinkId>(l);
    EXPECT_DOUBLE_EQ(g1.link(id).capacity_ab, g2.link(id).capacity_ab);
    EXPECT_DOUBLE_EQ(g1.link(id).capacity_ba, g2.link(id).capacity_ba);
    EXPECT_NEAR(g1.link(id).latency, g2.link(id).latency, 1e-12);
  }
}

TEST(ParseTopology, TestbedRoundTrips) {
  auto g1 = testbed();
  auto g2 = parse_topology(format_topology(g1));
  EXPECT_EQ(g2.node_count(), 21u);
  EXPECT_EQ(g2.link_count(), 20u);
  EXPECT_TRUE(g2.find_node("gibraltar").has_value());
}

}  // namespace
}  // namespace netsel::topo
