// Tests for the client-server custom execution pattern (§3.4) and the
// directional bandwidth machinery under it.

#include <gtest/gtest.h>

#include "api/service.hpp"
#include "select/patterns.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

TEST(DirectionalPathBw, DistinguishesDirections) {
  auto g = topo::star(2);
  remos::NetworkSnapshot snap(g);
  // h0's access link: upstream busy, downstream free.
  snap.set_bw_dir(0, true, 10e6);   // sw -> h0? direction semantics: a->b
  // star() adds links (sw, h): a = sw, b = host => forward is sw->host.
  auto h0 = g.find_node("h0").value();
  auto h1 = g.find_node("h1").value();
  // Path h1 -> h0 ends with the sw->h0 direction (forward on link 0).
  EXPECT_NEAR(directional_path_bw(snap, h1, h0).available, 10e6, 1.0);
  // Opposite direction is untouched.
  EXPECT_NEAR(directional_path_bw(snap, h0, h1).available, 100e6, 1.0);
}

TEST(DirectionalPathBw, FractionAgainstStructuralPeak) {
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  auto m7 = g.find_node("m-7").value();
  auto m13 = g.find_node("m-13").value();
  auto info = directional_path_bw(snap, m7, m13);
  EXPECT_DOUBLE_EQ(info.peak, 100e6);  // access links bound the ATM segment
  EXPECT_DOUBLE_EQ(info.fraction(), 1.0);
  EXPECT_TRUE(std::isinf(directional_path_bw(snap, m7, m7).available));
}

TEST(ClientServer, ServerGetsMaxCompute) {
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  int i = 0;
  for (auto n : g.compute_nodes()) snap.set_loadavg(n, 0.1 * i++);
  ClientServerOptions opt;
  opt.num_servers = 1;
  opt.num_clients = 3;
  auto r = select_client_server(snap, opt);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.servers.size(), 1u);
  EXPECT_EQ(g.node(r.servers[0]).name, "m-1");  // least loaded
  EXPECT_EQ(r.clients.size(), 3u);
  // Clients and servers never overlap.
  for (auto c : r.clients) EXPECT_NE(c, r.servers[0]);
}

TEST(ClientServer, ClientsAvoidCongestedDownlinks) {
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  // Congest the server->client direction of the access links of m-2..m-4
  // (forward = router->host, because testbed adds links as (router, host)).
  for (const char* name : {"m-2", "m-3", "m-4"}) {
    auto h = g.find_node(name).value();
    snap.set_bw_dir(g.links_of(h)[0], true, 1e6);
  }
  ClientServerOptions opt;
  opt.num_servers = 1;
  opt.num_clients = 5;
  auto r = select_client_server(snap, opt);
  ASSERT_TRUE(r.feasible);
  for (auto c : r.clients) {
    for (const char* name : {"m-2", "m-3", "m-4"})
      EXPECT_NE(g.node(c).name, name);
  }
}

TEST(ClientServer, UpstreamCongestionDoesNotMatter) {
  // Only server -> client traffic is significant (§3.4): a congested
  // *upstream* (host->router) direction must not penalise a client.
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  for (auto n : g.compute_nodes()) {
    // Make m-5 clearly the best client by cpu except for its upstream.
    snap.set_loadavg(n, g.node(n).name == "m-5" ? 0.0 : 0.5);
  }
  auto m5 = g.find_node("m-5").value();
  snap.set_bw_dir(g.links_of(m5)[0], false, 1e3);  // host->router direction
  ClientServerOptions opt;
  opt.num_servers = 1;
  opt.num_clients = 1;
  // Pin the server elsewhere so m-5 stays in the client pool.
  opt.server_eligible.assign(g.node_count(), 0);
  opt.server_eligible[static_cast<std::size_t>(g.find_node("m-1").value())] = 1;
  auto r = select_client_server(snap, opt);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.clients.size(), 1u);
  EXPECT_EQ(r.clients[0], m5);
}

TEST(ClientServer, EligibilityMasksRespected) {
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  ClientServerOptions opt;
  opt.num_servers = 1;
  opt.num_clients = 2;
  opt.server_eligible.assign(g.node_count(), 0);
  auto m9 = g.find_node("m-9").value();
  opt.server_eligible[static_cast<std::size_t>(m9)] = 1;
  auto r = select_client_server(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.servers[0], m9);
  // Empty server pool is infeasible.
  opt.server_eligible.assign(g.node_count(), 0);
  EXPECT_FALSE(select_client_server(snap, opt).feasible);
}

TEST(ClientServer, Rejections) {
  auto g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  ClientServerOptions opt;
  opt.num_servers = 0;
  EXPECT_THROW(select_client_server(snap, opt), std::invalid_argument);
  opt.num_servers = 1;
  opt.cpu_priority = 0.0;
  EXPECT_THROW(select_client_server(snap, opt), std::invalid_argument);
  opt.cpu_priority = 1.0;
  opt.server_eligible.assign(2, 1);
  EXPECT_THROW(select_client_server(snap, opt), std::invalid_argument);
  opt.server_eligible.clear();
  opt.num_clients = 10;  // only 3 non-server nodes remain
  EXPECT_FALSE(select_client_server(snap, opt).feasible);
}

}  // namespace
}  // namespace netsel::select

namespace netsel::api {
namespace {

TEST(ServiceClientServer, PatternRoutesToDirectionalSelection) {
  sim::NetworkSim net(topo::testbed());
  // Load a specific node so the server choice is deterministic: everything
  // except m-7 is lightly loaded.
  for (auto n : net.topology().compute_nodes()) {
    if (net.topology().node(n).name != "m-7")
      net.host(n).submit(1e9, sim::kBackgroundOwner);
  }
  net.sim().run_until(600.0);
  remos::Remos remos(net);
  remos.start();

  AppSpec spec;
  spec.pattern = AppPattern::ClientServer;
  NodeGroup server;
  server.name = "server";
  server.count = 1;
  server.placement_priority = 10;
  NodeGroup clients;
  clients.name = "clients";
  clients.count = 4;
  spec.groups = {server, clients};

  NodeSelectionService svc(remos);
  auto placement = svc.place(spec);
  ASSERT_TRUE(placement.feasible);
  ASSERT_EQ(placement.group_nodes[0].size(), 1u);
  EXPECT_EQ(net.topology().node(placement.group_nodes[0][0]).name, "m-7");
  EXPECT_EQ(placement.group_nodes[1].size(), 4u);
}

}  // namespace
}  // namespace netsel::api
