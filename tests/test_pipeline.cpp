// Tests for the pipeline application model and pipeline placement
// (latency-throughput structure from the paper's data-parallel-pipeline
// lineage; §3.4 "custom execution patterns").

#include <gtest/gtest.h>

#include <algorithm>

#include "appsim/pipeline.hpp"
#include "select/patterns.hpp"
#include "topo/generators.hpp"

namespace netsel {
namespace {

std::vector<topo::NodeId> first_hosts(const sim::NetworkSim& net, int m) {
  auto cn = net.topology().compute_nodes();
  cn.resize(static_cast<std::size_t>(m));
  return cn;
}

TEST(PipelineApp, ThroughputGatedBySlowestStage) {
  sim::NetworkSim net(topo::star(3));
  appsim::PipelineConfig cfg;
  cfg.num_items = 20;
  cfg.stage_work = {0.5, 2.0, 0.5};  // middle stage is the bottleneck
  cfg.transfer_bytes = {0.0, 0.0};
  appsim::PipelineApp app(net, cfg);
  app.start(first_hosts(net, 3));
  net.sim().run();
  ASSERT_TRUE(app.finished());
  // Steady state: one item per 2 s; fill adds the other stages once.
  EXPECT_NEAR(app.elapsed(), 20 * 2.0 + 0.5 + 0.5, 1e-6);
  EXPECT_NEAR(app.first_item_latency(), 3.0, 1e-6);
  EXPECT_NEAR(app.throughput(), 20.0 / app.elapsed(), 1e-12);
}

TEST(PipelineApp, TransferCanBeTheBottleneck) {
  sim::NetworkSim net(topo::star(2));
  appsim::PipelineConfig cfg;
  cfg.num_items = 10;
  cfg.stage_work = {0.1, 0.1};
  cfg.transfer_bytes = {12.5e6};  // 1 s per item over 100 Mbps
  appsim::PipelineApp app(net, cfg);
  app.start(first_hosts(net, 2));
  net.sim().run();
  ASSERT_TRUE(app.finished());
  // Period 1 s (the link); note transfers of consecutive items may overlap
  // with computes but not with each other (serialized by stage 0's pacing
  // at 0.1 s... they do overlap on the link, raising the period).
  // Conservative checks: at least the serial link time, at most the fully
  // serialized schedule.
  EXPECT_GE(app.elapsed(), 10 * 1.0 - 1e-6);
  EXPECT_LE(app.elapsed(), 10 * 1.2 + 1.0);
}

TEST(PipelineApp, ColocatedStagesSkipTransfers) {
  sim::NetworkSim net(topo::star(2));
  appsim::PipelineConfig cfg;
  cfg.num_items = 5;
  cfg.stage_work = {1.0, 1.0};
  cfg.transfer_bytes = {1e9};
  appsim::PipelineApp app(net, cfg);
  auto h = first_hosts(net, 1);
  app.start({h[0], h[0]});  // both stages on one node
  net.sim().run();
  ASSERT_TRUE(app.finished());
  // No flows; but the two stages share one CPU: total work 10 cpu-s.
  EXPECT_NEAR(app.elapsed(), 10.0, 1e-6);
}

TEST(PipelineApp, Validation) {
  sim::NetworkSim net(topo::star(3));
  appsim::PipelineConfig cfg;
  cfg.num_items = 0;
  cfg.stage_work = {1.0, 1.0};
  cfg.transfer_bytes = {0.0};
  EXPECT_THROW(appsim::PipelineApp(net, cfg), std::invalid_argument);
  cfg.num_items = 1;
  cfg.stage_work = {1.0};
  cfg.transfer_bytes = {};
  EXPECT_THROW(appsim::PipelineApp(net, cfg), std::invalid_argument);
  cfg.stage_work = {1.0, 0.0};
  cfg.transfer_bytes = {0.0};
  EXPECT_THROW(appsim::PipelineApp(net, cfg), std::invalid_argument);
  cfg.stage_work = {1.0, 1.0};
  cfg.transfer_bytes = {0.0, 0.0};
  EXPECT_THROW(appsim::PipelineApp(net, cfg), std::invalid_argument);
}

TEST(PipelinePeriod, ClosedForm) {
  auto g = topo::star(3);
  remos::NetworkSnapshot snap(g);
  snap.set_cpu(2, 0.5);
  select::PipelineOptions opt;
  opt.stage_work = {1.0, 2.0, 0.5};
  opt.transfer_bytes = {1.25e6, 12.5e6};
  // Assignment: stage0->h0(1.0), stage1->h1(0.5), stage2->h2(1.0).
  // Times: 1.0, 4.0, 0.5; transfers: 0.1 s, 1.0 s. Period = 4.
  double period = select::pipeline_period(snap, opt, {1, 2, 3});
  EXPECT_DOUBLE_EQ(period, 4.0);
}

TEST(PipelineSelect, HeavyStageGetsFastNode) {
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto fast = g.add_compute("fast", 4.0);
  auto mid = g.add_compute("mid", 2.0);
  auto slow = g.add_compute("slow", 1.0);
  for (auto n : {fast, mid, slow}) g.add_link(sw, n, 1e9);
  remos::NetworkSnapshot snap(g);
  select::PipelineOptions opt;
  opt.stage_work = {1.0, 8.0, 2.0};
  opt.transfer_bytes = {1e6, 1e6};
  auto r = select::select_pipeline(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stage_nodes[1], fast) << "heaviest stage on the 4x node";
  EXPECT_EQ(r.stage_nodes[2], mid);
  EXPECT_EQ(r.stage_nodes[0], slow);
  EXPECT_DOUBLE_EQ(r.predicted_period, 2.0);  // 8/4 = 2 gates
}

TEST(PipelineSelect, AvoidsCongestedInterStageLink) {
  // Two idle nodes behind a congested trunk vs two on one switch: the
  // heavy inter-stage transfer must stay inside the switch.
  auto g = topo::dumbbell(2, 2);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 2e6);  // bottleneck trunk nearly full
  select::PipelineOptions opt;
  opt.stage_work = {1.0, 1.0};
  opt.transfer_bytes = {12.5e6};  // 1 s at 100 Mbps, 50 s over the trunk
  auto r = select::select_pipeline(snap, opt);
  ASSERT_TRUE(r.feasible);
  // Both stages on the same side of the dumbbell.
  char side0 = g.node(r.stage_nodes[0]).name[0];
  char side1 = g.node(r.stage_nodes[1]).name[0];
  EXPECT_EQ(side0, side1);
  EXPECT_NEAR(r.predicted_period, 1.0, 1e-9);
}

TEST(PipelineSelect, MatchesExhaustiveOnSmallInstances) {
  util::Rng rng(71);
  for (int trial = 0; trial < 12; ++trial) {
    topo::RandomTreeOptions topt;
    topt.compute_nodes = 6;
    topt.network_nodes = 2;
    auto g = topo::random_tree(rng, topt);
    remos::NetworkSnapshot snap(g);
    for (auto n : g.compute_nodes()) snap.set_loadavg(n, rng.uniform(0.0, 2.0));
    for (std::size_t l = 0; l < g.link_count(); ++l) {
      auto id = static_cast<topo::LinkId>(l);
      snap.set_bw(id, rng.uniform(0.2, 1.0) * snap.maxbw(id));
    }
    select::PipelineOptions opt;
    opt.stage_work = {rng.uniform(0.5, 4.0), rng.uniform(0.5, 4.0),
                      rng.uniform(0.5, 4.0)};
    opt.transfer_bytes = {rng.uniform(1e6, 2e7), rng.uniform(1e6, 2e7)};
    opt.candidate_pool = 6;  // full pool: heuristic vs exhaustive is fair
    auto heur = select::select_pipeline(snap, opt);
    ASSERT_TRUE(heur.feasible);

    // Exhaustive: all ordered triples of distinct compute nodes.
    auto computes = g.compute_nodes();
    double best = std::numeric_limits<double>::infinity();
    for (auto a : computes)
      for (auto b : computes)
        for (auto c : computes) {
          if (a == b || b == c || a == c) continue;
          best = std::min(best, select::pipeline_period(snap, opt, {a, b, c}));
        }
    EXPECT_GE(heur.predicted_period, best - 1e-12);
    EXPECT_LE(heur.predicted_period, best * 1.25 + 1e-12)
        << "trial " << trial;
  }
}

TEST(PipelineSelect, PredictionMatchesSimulatedThroughput) {
  // Run the pipeline on the selected placement; the simulated steady-state
  // period must be close to the predicted one.
  sim::NetworkSim net(topo::testbed());
  remos::NetworkSnapshot snap(net.topology());
  select::PipelineOptions opt;
  opt.stage_work = {0.5, 2.0, 1.0};
  opt.transfer_bytes = {4e6, 2e6};
  auto r = select::select_pipeline(snap, opt);
  ASSERT_TRUE(r.feasible);
  appsim::PipelineConfig cfg;
  cfg.num_items = 50;
  cfg.stage_work = opt.stage_work;
  cfg.transfer_bytes = opt.transfer_bytes;
  appsim::PipelineApp app(net, cfg);
  app.start(r.stage_nodes);
  net.sim().run();
  ASSERT_TRUE(app.finished());
  double simulated_period = app.elapsed() / 50.0;
  EXPECT_NEAR(simulated_period, r.predicted_period,
              r.predicted_period * 0.15);
}

TEST(PipelineSelect, Rejections) {
  auto g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  select::PipelineOptions opt;
  opt.stage_work = {1.0};
  opt.transfer_bytes = {};
  EXPECT_THROW(select::select_pipeline(snap, opt), std::invalid_argument);
  opt.stage_work = {1.0, 1.0};
  opt.transfer_bytes = {0.0, 0.0};
  EXPECT_THROW(select::select_pipeline(snap, opt), std::invalid_argument);
  opt.transfer_bytes = {0.0};
  opt.eligible.assign(2, 1);
  EXPECT_THROW(select::select_pipeline(snap, opt), std::invalid_argument);
  opt.eligible.clear();
  opt.stage_work = {1.0, 1.0, 1.0, 1.0, 1.0};
  opt.transfer_bytes = {0.0, 0.0, 0.0, 0.0};
  auto r = select::select_pipeline(snap, opt);  // 5 stages, 4 nodes
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace netsel
