#include "remos/remos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "load/traffic_generator.hpp"
#include "topo/generators.hpp"

namespace netsel::remos {
namespace {

TEST(TimeSeriesTest, RecordsAndTrims) {
  TimeSeries ts(10.0);
  ts.record(0.0, 1.0);
  ts.record(5.0, 2.0);
  ts.record(12.0, 3.0);  // trims the t=0 sample (older than 12-10)
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.latest().value, 3.0);
}

TEST(TimeSeriesTest, RejectsOutOfOrder) {
  TimeSeries ts(10.0);
  ts.record(5.0, 1.0);
  EXPECT_THROW(ts.record(4.0, 2.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(0.0), std::invalid_argument);
}

TEST(TimeSeriesTest, LatestOnEmptyThrows) {
  TimeSeries ts(10.0);
  EXPECT_THROW(ts.latest(), std::logic_error);
}

TEST(TimeSeriesTest, AgeAndFreshness) {
  TimeSeries ts(10.0);
  EXPECT_TRUE(std::isinf(ts.age(5.0)));
  EXPECT_FALSE(ts.fresh(5.0, 100.0));
  ts.record(5.0, 1.0);
  EXPECT_DOUBLE_EQ(ts.age(7.0), 2.0);
  EXPECT_TRUE(ts.fresh(7.0, 2.0));
  EXPECT_FALSE(ts.fresh(7.0, 1.9));
}

TEST(Forecasters, EstimateBoundedFallsBackWhenStale) {
  // Regression: trim() only runs inside record(), so a sensor that goes
  // silent keeps serving its stalled samples to estimate() forever. The
  // bounded variant must answer the fallback instead once the newest
  // sample exceeds max_age.
  TimeSeries ts(10.0);
  for (double t = 0.0; t <= 4.0; t += 1.0) ts.record(t, 8.0);
  LastValue f;
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.25), 8.0);  // stalled but trusted
  EXPECT_DOUBLE_EQ(f.estimate_bounded(ts, 0.25, 20.0, 5.0), 0.25);
  // An infinite bound is exactly estimate().
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(f.estimate_bounded(ts, 0.25, 20.0, inf), 8.0);
}

TEST(Forecasters, EstimateBoundedDropsOutOfWindowSamples) {
  // Fresh series, but the oldest retained sample predates now - window
  // (no record() has trimmed it): the bounded estimate must ignore it.
  TimeSeries ts(10.0);
  ts.record(0.0, 100.0);
  ts.record(9.0, 2.0);
  WindowMean f;
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 51.0);  // raw mean sees both
  EXPECT_DOUBLE_EQ(f.estimate_bounded(ts, 0.0, 12.0, 5.0), 2.0);
}

TEST(Forecasters, LastValue) {
  TimeSeries ts(100.0);
  LastValue f;
  EXPECT_DOUBLE_EQ(f.estimate(ts, 9.0), 9.0);  // fallback on empty
  ts.record(0.0, 1.0);
  ts.record(1.0, 5.0);
  EXPECT_DOUBLE_EQ(f.estimate(ts, 9.0), 5.0);
}

TEST(Forecasters, WindowMean) {
  TimeSeries ts(100.0);
  WindowMean f;
  EXPECT_DOUBLE_EQ(f.estimate(ts, 7.0), 7.0);
  ts.record(0.0, 2.0);
  ts.record(1.0, 4.0);
  ts.record(2.0, 9.0);
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 5.0);
}

TEST(Forecasters, EwmaWeightsRecentSamples) {
  TimeSeries ts(100.0);
  Ewma f(0.5);
  ts.record(0.0, 0.0);
  ts.record(1.0, 0.0);
  ts.record(2.0, 8.0);
  // est = 0, then 0.5*0+0.5*0=0, then 0.5*8+0.5*0 = 4.
  EXPECT_DOUBLE_EQ(f.estimate(ts, 0.0), 4.0);
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

struct RemosFixture : ::testing::Test {
  sim::NetworkSim net{topo::testbed()};
  topo::NodeId m1 = net.topology().find_node("m-1").value();
  topo::NodeId m2 = net.topology().find_node("m-2").value();
  topo::NodeId m13 = net.topology().find_node("m-13").value();
};

TEST_F(RemosFixture, MonitorPollsOnSchedule) {
  Remos remos(net, MonitorConfig{2.0, 30.0, {}});
  remos.start();
  net.sim().run_until(10.0);
  // Polls at 0, 2, 4, 6, 8, 10.
  EXPECT_EQ(remos.monitor().polls_completed(), 6u);
  EXPECT_EQ(remos.monitor().load_history(m1).size(), 6u);
}

TEST_F(RemosFixture, MonitorStopHaltsPolling) {
  Remos remos(net, MonitorConfig{2.0, 30.0, {}});
  remos.start();
  net.sim().run_until(10.0);
  remos.monitor().stop();
  auto polls = remos.monitor().polls_completed();
  net.sim().run_until(50.0);
  EXPECT_EQ(remos.monitor().polls_completed(), polls);
}

TEST_F(RemosFixture, SnapshotSeesIdleNetwork) {
  Remos remos(net);
  remos.start();
  net.sim().run_until(10.0);
  auto snap = remos.snapshot();
  EXPECT_DOUBLE_EQ(snap.cpu(m1), 1.0);
  for (std::size_t l = 0; l < net.topology().link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    EXPECT_DOUBLE_EQ(snap.bw(id), snap.maxbw(id));
    EXPECT_DOUBLE_EQ(snap.bwfactor(id), 1.0);
  }
}

TEST_F(RemosFixture, SnapshotSeesHostLoad) {
  net.host(m1).submit(1e9, sim::kBackgroundOwner);
  net.host(m1).submit(1e9, sim::kBackgroundOwner);
  Remos remos(net);
  net.sim().run_until(600.0);  // loadavg converges to 2
  remos.start();               // first poll immediately
  auto snap = remos.snapshot();
  EXPECT_NEAR(snap.cpu(m1), 1.0 / 3.0, 1e-3);  // cpu = 1/(1+2)
  EXPECT_DOUBLE_EQ(snap.cpu(m2), 1.0);
}

TEST_F(RemosFixture, SnapshotSeesLinkTraffic) {
  Remos remos(net);
  net.network().start_flow(m1, m13, 1e12, sim::kBackgroundOwner);
  remos.start();
  net.sim().run_until(4.0);
  auto snap = remos.snapshot();
  // Every link on the m-1 -> m-13 route has 100 Mbps used in the forward
  // direction; available = capacity - used (so the 155 Mbps ATM segment
  // still shows 55 Mbps available).
  auto links = net.routes().route(m1, m13);
  for (auto l : links) {
    EXPECT_LE(snap.bw(l), snap.maxbw(l) - 100e6 + 1e4)
        << "link " << net.topology().link(l).name;
  }
}

TEST_F(RemosFixture, MeasurementsAreStaleNotLive) {
  // A flow started between polls is invisible until the next sweep — Remos
  // reports measurements, not ground truth.
  Remos remos(net, MonitorConfig{10.0, 60.0, {}});
  remos.start();                 // poll at t=0 (idle)
  net.sim().run_until(2.0);
  net.network().start_flow(m1, m13, 1e12, sim::kBackgroundOwner);
  net.sim().run_until(5.0);      // next poll is at t=10
  auto snap = remos.snapshot();
  auto links = net.routes().route(m1, m13);
  EXPECT_DOUBLE_EQ(snap.bw(links[0]), snap.maxbw(links[0]));
  net.sim().run_until(11.0);     // poll at t=10 saw the flow
  snap = remos.snapshot();
  EXPECT_LT(snap.bw(links[0]), snap.maxbw(links[0]) * 0.05 + 1e4);
}

TEST_F(RemosFixture, FlowQueryBottleneckResidual) {
  Remos remos(net);
  remos.start();
  net.sim().run_until(2.0);
  EXPECT_NEAR(remos.available_bandwidth(m1, m2), 100e6, 1.0);
  // Cross-router path is limited by the 100 Mbps segments even though the
  // ATM link offers 155.
  EXPECT_NEAR(remos.available_bandwidth(m1, m13), 100e6, 1.0);
  EXPECT_TRUE(std::isinf(remos.available_bandwidth(m1, m1)));
}

TEST_F(RemosFixture, FlowQueryAccountsForSharing) {
  Remos remos(net);
  net.network().start_flow(m1, m2, 1e12, sim::kBackgroundOwner);
  remos.start();
  net.sim().run_until(4.0);
  // Residual on m-1's uplink is ~0, but a new flow would get a fair share
  // of capacity/(flows+1) = 50 Mbps.
  double projected = remos.projected_flow_bandwidth(m1, m2);
  EXPECT_NEAR(projected, 50e6, 1e6);
  double residual = remos.available_bandwidth(m1, m2);
  EXPECT_LT(residual, 1e6);
}

TEST_F(RemosFixture, OwnerExclusionRemovesOwnContribution) {
  sim::OwnerTag app = net.new_owner();
  net.host(m1).submit(1e9, app);
  net.host(m1).submit(1e9, sim::kBackgroundOwner);
  Remos remos(net);
  net.sim().run_until(600.0);
  remos.start();
  QueryOptions all;
  QueryOptions excl;
  excl.exclude_owner = app;
  EXPECT_NEAR(remos.load_average(m1, all), 2.0, 1e-2);
  EXPECT_NEAR(remos.load_average(m1, excl), 1.0, 1e-2);
  auto snap_all = remos.snapshot(all);
  auto snap_excl = remos.snapshot(excl);
  EXPECT_LT(snap_all.cpu(m1), snap_excl.cpu(m1));
}

TEST_F(RemosFixture, OwnerExclusionOnLinks) {
  sim::OwnerTag app = net.new_owner();
  net.network().start_flow(m1, m2, 1e12, app);
  Remos remos(net);
  remos.start();
  net.sim().run_until(4.0);
  QueryOptions excl;
  excl.exclude_owner = app;
  auto snap = remos.snapshot(excl);
  auto links = net.routes().route(m1, m2);
  EXPECT_NEAR(snap.bw(links[0]), snap.maxbw(links[0]), 1e3)
      << "own traffic must be excluded";
}

TEST_F(RemosFixture, SnapshotHelpers) {
  NetworkSnapshot snap(net.topology());
  snap.set_loadavg(m1, 3.0);
  EXPECT_DOUBLE_EQ(snap.cpu(m1), 0.25);
  snap.set_cpu(m1, 0.5);
  EXPECT_DOUBLE_EQ(snap.cpu_reference(m1, 1.0), 0.5);
  EXPECT_THROW(snap.set_cpu(net.topology().find_node("panama").value(), 0.5),
               std::invalid_argument);
  EXPECT_THROW(snap.set_cpu(m1, 1.5), std::invalid_argument);
  EXPECT_THROW(snap.set_bw(0, -1.0), std::invalid_argument);
  snap.set_bw(0, 5e6);
  EXPECT_DOUBLE_EQ(snap.bw(0), 5e6);
  EXPECT_DOUBLE_EQ(snap.bw_reference(0, 10e6), 0.5);
  EXPECT_THROW(snap.cpu_reference(m1, 0.0), std::invalid_argument);
}

TEST_F(RemosFixture, MonitorConfigValidation) {
  EXPECT_THROW(Monitor(net, MonitorConfig{0.0, 30.0, {}}),
               std::invalid_argument);
  EXPECT_THROW(Monitor(net, MonitorConfig{5.0, 2.0, {}}),
               std::invalid_argument);
}

TEST_F(RemosFixture, MonitorDoubleStartIsNoOp) {
  Remos remos(net, MonitorConfig{2.0, 30.0, {}});
  remos.start();
  net.sim().run_until(10.0);
  remos.start();  // must not re-poll or double the cadence
  net.sim().run_until(20.0);
  // On-time polls at t = 0, 2, ..., 20 and nothing else.
  EXPECT_EQ(remos.monitor().polls_completed(), 11u);
  EXPECT_EQ(remos.monitor().load_history(m1).size(), 11u);
}

TEST_F(RemosFixture, NullForecasterRejectedEverywhere) {
  Remos remos(net);
  remos.start();
  net.sim().run_until(2.0);
  QueryOptions q;
  q.forecaster = nullptr;
  EXPECT_THROW(remos.snapshot(q), std::invalid_argument);
  EXPECT_THROW(remos.load_average(m1, q), std::invalid_argument);
  EXPECT_THROW(remos.available_bandwidth(m1, m2, q), std::invalid_argument);
  EXPECT_THROW(remos.projected_flow_bandwidth(m1, m2, q),
               std::invalid_argument);
  // Regression: the src == dst shortcut used to bypass validation.
  EXPECT_THROW(remos.available_bandwidth(m1, m1, q), std::invalid_argument);
  EXPECT_THROW(remos.projected_flow_bandwidth(m1, m1, q),
               std::invalid_argument);
}

TEST_F(RemosFixture, QueryQualityCountsSensors) {
  Remos remos(net);
  remos.start();
  net.sim().run_until(10.0);
  QueryQuality quality;
  QueryOptions q;
  q.quality = &quality;
  auto warm = remos.snapshot(q);
  // One sensor per compute node's load series, one per link direction.
  EXPECT_EQ(quality.sensors_total, net.topology().compute_node_count() +
                                       2 * net.topology().link_count());
  EXPECT_EQ(quality.sensors_fresh, quality.sensors_total);
  EXPECT_DOUBLE_EQ(quality.coverage(), 1.0);
  // Default horizon is the monitor's history window.
  EXPECT_DOUBLE_EQ(quality.horizon, remos.monitor().config().history_window);
  EXPECT_LE(quality.oldest_age, quality.horizon);

  // Attaching quality is purely observational: answers are unchanged.
  auto plain = remos.snapshot();
  EXPECT_DOUBLE_EQ(warm.cpu(m1), plain.cpu(m1));
  EXPECT_DOUBLE_EQ(warm.bw(0), plain.bw(0));
}

TEST_F(RemosFixture, QueryQualityFlagsStaleSensors) {
  Remos remos(net, MonitorConfig{2.0, 30.0, {}});
  remos.start();
  net.sim().run_until(10.0);
  remos.monitor().stop();
  net.sim().run_until(60.0);  // newest sample 50 s old, window 30 s
  QueryQuality quality;
  QueryOptions q;
  q.quality = &quality;
  auto snap = remos.snapshot(q);
  EXPECT_EQ(quality.sensors_fresh, 0u);
  EXPECT_DOUBLE_EQ(quality.coverage(), 0.0);
  EXPECT_GT(quality.newest_age, 30.0);
  // But with the default infinite max_sample_age the answer itself still
  // consumes the stalled samples — bit-identical historical behaviour.
  EXPECT_DOUBLE_EQ(snap.cpu(m1), 1.0);
}

TEST_F(RemosFixture, MaxSampleAgeBoundsAnswers) {
  Remos remos(net, MonitorConfig{2.0, 30.0, {}});
  net.network().start_flow(m1, m13, 1e12, sim::kBackgroundOwner);
  remos.start();
  net.sim().run_until(4.0);
  remos.monitor().stop();
  net.sim().run_until(50.0);
  auto links = net.routes().route(m1, m13);

  QueryOptions stale;  // default: trust the stalled measurement forever
  auto seen = remos.snapshot(stale);
  EXPECT_LT(seen.bw(links[0]), seen.maxbw(links[0]) * 0.05 + 1e4);

  QueryOptions bounded;
  bounded.max_sample_age = 5.0;  // newest sample is ~46 s old
  auto fallback = remos.snapshot(bounded);
  EXPECT_DOUBLE_EQ(fallback.bw(links[0]), fallback.maxbw(links[0]));
  EXPECT_DOUBLE_EQ(fallback.cpu(m1), 1.0);
}

TEST_F(RemosFixture, SaturatedLinkFloorsAtKBwFloor) {
  Remos remos(net);
  net.network().start_flow(m1, m2, 1e12, sim::kBackgroundOwner);
  remos.start();
  net.sim().run_until(4.0);
  auto snap = remos.snapshot();
  // The flow consumes m-1's entire uplink; the snapshot reports the public
  // floor, not zero, so selection can still order saturated links.
  auto links = net.routes().route(m1, m2);
  EXPECT_DOUBLE_EQ(snap.bw(links[0]), kBwFloor);
}

TEST_F(RemosFixture, OwnerExclusionClampsToZero) {
  // A trend forecaster can extrapolate the *total* below the owner's own
  // steady contribution (declining background, steady owner): the excluded
  // load must clamp at zero, never go negative.
  sim::OwnerTag app = net.new_owner();
  net.host(m1).submit(1e12, app);  // owner busy for the whole test
  net.host(m1).submit(1.0, sim::kBackgroundOwner);  // finishes immediately
  Remos remos(net, MonitorConfig{2.0, 30.0, {}});
  net.sim().run_until(5.0);  // let background load start decaying
  remos.start();
  net.sim().run_until(40.0);
  QueryOptions q;
  q.exclude_owner = app;
  q.forecaster = std::make_shared<LinearTrend>(600.0);
  double load = remos.load_average(m1, q);
  EXPECT_GE(load, 0.0);
  EXPECT_DOUBLE_EQ(load, 0.0);
}

}  // namespace
}  // namespace netsel::remos
