// Flow-query details: directional correctness on asymmetric links,
// projected max-min shares under multiple flows, and query interaction
// with logical subgraphs — plus an event-engine stress case backing the
// determinism guarantees everything above relies on.

#include <gtest/gtest.h>

#include <map>

#include "remos/remos.hpp"
#include "topo/generators.hpp"

namespace netsel::remos {
namespace {

/// sw -- a with asymmetric directions: sw->a 100 Mbps, a->sw 10 Mbps;
/// sw -- b symmetric 100 Mbps.
struct AsymFixture : ::testing::Test {
  topo::TopologyGraph g;
  topo::NodeId a, b;

  AsymFixture() {
    auto sw = g.add_network("sw");
    a = g.add_compute("a");
    b = g.add_compute("b");
    g.add_link(sw, a, 100e6, 10e6);
    g.add_link(sw, b, 100e6);
    g.validate();
  }
};

TEST_F(AsymFixture, AvailableBandwidthIsDirectional) {
  sim::NetworkSim net(std::move(g));
  Remos remos(net);
  remos.start();
  auto na = net.topology().find_node("a").value();
  auto nb = net.topology().find_node("b").value();
  // b -> a uses sw->a (100); a -> b uses a->sw (10).
  EXPECT_NEAR(remos.available_bandwidth(nb, na), 100e6, 1.0);
  EXPECT_NEAR(remos.available_bandwidth(na, nb), 10e6, 1.0);
  // The undirected snapshot value is the min of the directions (§3.3).
  auto snap = remos.snapshot();
  EXPECT_DOUBLE_EQ(snap.bw(0), 10e6);
}

TEST_F(AsymFixture, SimulatedFlowsRespectDirectionalCapacity) {
  sim::NetworkSim net(std::move(g));
  auto na = net.topology().find_node("a").value();
  auto nb = net.topology().find_node("b").value();
  auto up = net.network().start_flow(na, nb, 1e9, sim::kBackgroundOwner);
  auto down = net.network().start_flow(nb, na, 1e9, sim::kBackgroundOwner);
  EXPECT_NEAR(net.network().flow_rate(up), 10e6, 1.0);
  EXPECT_NEAR(net.network().flow_rate(down), 100e6, 1.0);
}

TEST(ProjectedShare, ScalesWithCompetingFlowCount) {
  sim::NetworkSim net(topo::star(2));
  auto h0 = net.topology().find_node("h0").value();
  auto h1 = net.topology().find_node("h1").value();
  Remos remos(net);
  remos.start();
  // No competition: the projected share is the full link.
  EXPECT_NEAR(remos.projected_flow_bandwidth(h0, h1), 100e6, 1.0);
  std::map<int, double> expected{{1, 50e6}, {2, 100e6 / 3.0}, {3, 25e6}};
  for (auto [flows, share] : expected) {
    net.network().start_flow(h0, h1, 1e12, sim::kBackgroundOwner);
    net.sim().run_until(net.sim().now() + 2.5);  // let a poll observe it
    EXPECT_NEAR(remos.projected_flow_bandwidth(h0, h1), share, 1e5)
        << flows << " existing flows";
  }
}

TEST(ProjectedShare, BetterThanResidualOnSaturatedLinks) {
  // The §2.2 point of flow queries "accounting for sharing": residual says
  // a saturated link offers ~nothing; the projected fair share says a new
  // flow would still get capacity/(n+1).
  sim::NetworkSim net(topo::testbed());
  auto m1 = net.topology().find_node("m-1").value();
  auto m2 = net.topology().find_node("m-2").value();
  net.network().start_flow(m1, m2, 1e12, sim::kBackgroundOwner);
  Remos remos(net);
  remos.start();
  net.sim().run_until(4.0);
  EXPECT_LT(remos.available_bandwidth(m1, m2), 1e6);
  EXPECT_GT(remos.projected_flow_bandwidth(m1, m2), 45e6);
}

TEST(SubgraphQueries, FlowQueryConsistentWithProjection) {
  // Selection on a projected subgraph must see the same availability that
  // the full-graph flow query reports for the surviving links.
  sim::NetworkSim net(topo::testbed());
  auto m1 = net.topology().find_node("m-1").value();
  auto m13 = net.topology().find_node("m-13").value();
  net.network().start_flow(m1, m13, 1e12, sim::kBackgroundOwner);
  Remos remos(net);
  remos.start();
  net.sim().run_until(4.0);

  auto sub = remos.logical_subgraph({m1, m13});
  auto snap = project_snapshot(remos.snapshot(), sub);
  auto s1 = sub.graph.find_node("m-1").value();
  auto s13 = sub.graph.find_node("m-13").value();
  // Bottleneck along the sub-path == full-graph directional query.
  double full = remos.available_bandwidth(m1, m13);
  double via_sub = std::numeric_limits<double>::infinity();
  topo::RoutingTable routes(sub.graph);
  auto nodes = routes.route_nodes(s1, s13);
  auto links = routes.route(s1, s13);
  for (std::size_t i = 0; i < links.size(); ++i) {
    bool fwd = sub.graph.link(links[i]).a == nodes[i];
    via_sub = std::min(via_sub, snap.bw_dir(links[i], fwd));
  }
  EXPECT_NEAR(via_sub, std::max(full, 1e3), 2e3);
}

TEST(EngineStress, ThousandsOfRandomEventsRunInOrder) {
  sim::Simulator sim;
  util::Rng rng(123);
  double last = -1.0;
  long executed = 0;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 5000; ++i) {
    double at = rng.uniform(0.0, 1000.0);
    ids.push_back(sim.schedule_at(at, [&, at] {
      EXPECT_GE(at, last);
      last = at;
      ++executed;
    }));
  }
  // Cancel a random subset.
  long cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    sim.cancel(ids[i]);
    ++cancelled;
  }
  sim.run();
  EXPECT_EQ(executed, 5000 - cancelled);
  EXPECT_EQ(sim.executed_events(), static_cast<std::uint64_t>(executed));
}

TEST(EngineStress, InterleavedSchedulingDuringExecution) {
  sim::Simulator sim;
  util::Rng rng(124);
  long fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth <= 0) return;
    int fanout = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < fanout; ++i) {
      sim.schedule_after(rng.uniform(0.01, 1.0),
                         [&chain, depth] { chain(depth - 1); });
    }
  };
  sim.schedule_at(0.0, [&] { chain(12); });
  sim.run();
  EXPECT_GT(fired, 12);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace netsel::remos
