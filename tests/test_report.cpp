#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace netsel::exp {
namespace {

TEST(CsvEscape, PassesPlainFields) {
  EXPECT_EQ(csv_escape("FFT"), "FFT");
  EXPECT_EQ(csv_escape("m-1+m-2"), "m-1+m-2");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(csv_escape("FFT (1K), big"), "\"FFT (1K), big\"");
  EXPECT_EQ(csv_escape("he said \"hi\""), "\"he said \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Table1Csv, ShapeAndContent) {
  MeasuredRow row;
  row.app = "FFT, transposed";  // comma forces quoting
  row.nodes = 4;
  row.reference = 48.0;
  for (int c = 0; c < 3; ++c) {
    auto cs = static_cast<std::size_t>(c);
    row.random_sel[cs] = MeasuredCell{100.0 + c, 5.0, 25};
    row.auto_sel[cs] = MeasuredCell{80.0 + c, 4.0, 25};
  }
  auto csv = table1_csv({row});
  // Header + 3 conditions x 2 policies.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  EXPECT_NE(csv.find("app,nodes,condition,policy"), std::string::npos);
  EXPECT_NE(csv.find("\"FFT, transposed\""), std::string::npos);
  EXPECT_NE(csv.find(",load,random,100,5,25,"), std::string::npos);
}

TEST(Table1Csv, PaperValuesAlongside) {
  MeasuredRow row;
  row.app = "FFT (1K)";
  row.nodes = 4;
  row.reference = 48.0;
  auto csv = table1_csv({row});
  // Paper's FFT load+traffic value 142.6 appears in the random row.
  EXPECT_NE(csv.find("142.6"), std::string::npos);
  EXPECT_NE(csv.find("118.5"), std::string::npos);
}

TEST(TrialsCsv, PerTrialRows) {
  Scenario s = table1_scenario(true, false);
  auto csv = trials_csv(fft_case(), s, Policy::AutoBalanced, 3, 77);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3
  // Seeds in the rows are the hashed per-trial derivations, not seed0 + t.
  EXPECT_NE(csv.find("load,auto-balanced," + std::to_string(trial_seed(77, 0)) +
                     ","),
            std::string::npos);
  EXPECT_NE(csv.find("m-"), std::string::npos) << "node names listed";
  // Determinism: same seeds, same csv.
  EXPECT_EQ(csv, trials_csv(fft_case(), s, Policy::AutoBalanced, 3, 77));
}

TEST(TrialsCsv, ConditionNames) {
  auto idle = trials_csv(fft_case(), table1_scenario(false, false),
                         Policy::AutoBalanced, 1, 5);
  EXPECT_NE(idle.find(",idle,"), std::string::npos);
  auto both = trials_csv(fft_case(), table1_scenario(true, true),
                         Policy::Random, 1, 5);
  EXPECT_NE(both.find(",load+traffic,"), std::string::npos);
}

}  // namespace
}  // namespace netsel::exp
