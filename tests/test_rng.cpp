#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace netsel::util {
namespace {

TEST(SplitMix64, ProducesKnownGoodDispersion) {
  SplitMix64 sm(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 1000u) << "collisions in 1000 draws";
}

TEST(HashName, DistinctNamesDistinctHashes) {
  EXPECT_NE(hash_name("loadgen/m-1"), hash_name("loadgen/m-2"));
  EXPECT_NE(hash_name("a"), hash_name("b"));
  EXPECT_EQ(hash_name("same"), hash_name("same"));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NamedStreamsAreIndependent) {
  Rng a(7, "load"), b(7, "traffic");
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NamedStreamIsDeterministic) {
  Rng a(7, "load"), b(7, "load");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ForkDerivesReproducibleChild) {
  Rng parent1(99), parent2(99);
  Rng c1 = parent1.fork("child");
  Rng c2 = parent2.fork("child");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, ForkIndependentOfParentDrawPosition) {
  // fork() derives from the seed, not the current engine state, so children
  // are identical regardless of how much the parent has been used.
  Rng p1(5), p2(5);
  (void)p2();
  (void)p2();
  Rng c1 = p1.fork("x"), c2 = p2.fork("x");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(2);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u) << "all of {2,3,4,5} should appear in 1000 draws";
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential_mean(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(6);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace netsel::util
