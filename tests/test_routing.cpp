#include "topo/routing.hpp"

#include <gtest/gtest.h>

#include "topo/generators.hpp"
#include "util/rng.hpp"

namespace netsel::topo {
namespace {

TEST(Routing, SameNodeEmptyRoute) {
  auto g = star(3);
  RoutingTable rt(g);
  EXPECT_TRUE(rt.route(1, 1).empty());
  EXPECT_EQ(rt.hops(1, 1), 0u);
  auto nodes = rt.route_nodes(1, 1);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 1);
}

TEST(Routing, StarRoutesThroughHub) {
  auto g = star(4);
  RoutingTable rt(g);
  NodeId h0 = g.find_node("h0").value();
  NodeId h3 = g.find_node("h3").value();
  auto nodes = rt.route_nodes(h0, h3);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], h0);
  EXPECT_EQ(g.node(nodes[1]).kind, NodeKind::Network);
  EXPECT_EQ(nodes[2], h3);
  EXPECT_EQ(rt.hops(h0, h3), 2u);
}

TEST(Routing, TestbedCrossRouterPath) {
  auto g = testbed();
  RoutingTable rt(g);
  NodeId m1 = g.find_node("m-1").value();    // panama
  NodeId m13 = g.find_node("m-13").value();  // suez
  auto nodes = rt.route_nodes(m1, m13);
  // m-1 -> panama -> gibraltar -> suez -> m-13
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(g.node(nodes[1]).name, "panama");
  EXPECT_EQ(g.node(nodes[2]).name, "gibraltar");
  EXPECT_EQ(g.node(nodes[3]).name, "suez");
  EXPECT_EQ(rt.hops(m1, m13), 4u);
}

TEST(Routing, RouteAndNodesConsistent) {
  auto g = testbed();
  RoutingTable rt(g);
  NodeId m7 = g.find_node("m-7").value();
  NodeId m18 = g.find_node("m-18").value();
  auto links = rt.route(m7, m18);
  auto nodes = rt.route_nodes(m7, m18);
  ASSERT_EQ(nodes.size(), links.size() + 1);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const Link& l = g.link(links[i]);
    bool forward = l.a == nodes[i] && l.b == nodes[i + 1];
    bool backward = l.b == nodes[i] && l.a == nodes[i + 1];
    EXPECT_TRUE(forward || backward) << "link " << i << " does not connect";
  }
}

TEST(Routing, SymmetricHopCounts) {
  util::Rng rng(5);
  auto g = random_tree(rng);
  RoutingTable rt(g);
  for (NodeId a : g.compute_nodes()) {
    for (NodeId b : g.compute_nodes()) {
      EXPECT_EQ(rt.hops(a, b), rt.hops(b, a));
    }
  }
}

TEST(Routing, UniquePathsOnTreeMatchBfs) {
  // On an acyclic graph the static route is the unique path, so routing
  // from a to b and b to a must traverse the same link set.
  util::Rng rng(6);
  auto g = random_tree(rng);
  RoutingTable rt(g);
  auto cn = g.compute_nodes();
  for (std::size_t i = 0; i + 1 < cn.size(); i += 3) {
    auto ab = rt.route(cn[i], cn[i + 1]);
    auto ba = rt.route(cn[i + 1], cn[i]);
    std::sort(ab.begin(), ab.end());
    std::sort(ba.begin(), ba.end());
    EXPECT_EQ(ab, ba);
  }
}

TEST(Routing, CyclicGraphPicksShortestFixedPath) {
  // Triangle of switches: route must take the 1-switch path, not wander.
  TopologyGraph g;
  NodeId s0 = g.add_network("s0");
  NodeId s1 = g.add_network("s1");
  NodeId s2 = g.add_network("s2");
  NodeId a = g.add_compute("a");
  NodeId b = g.add_compute("b");
  g.add_link(s0, s1, 1e8);
  g.add_link(s1, s2, 1e8);
  g.add_link(s2, s0, 1e8);
  g.add_link(s0, a, 1e8);
  g.add_link(s1, b, 1e8);
  RoutingTable rt(g);
  EXPECT_EQ(rt.hops(a, b), 3u);  // a-s0-s1-b
  // Deterministic: repeated builds give identical routes.
  RoutingTable rt2(g);
  EXPECT_EQ(rt.route(a, b), rt2.route(a, b));
}

TEST(Routing, DisconnectedGraphThrows) {
  TopologyGraph g;
  g.add_compute("a");
  g.add_compute("b");
  EXPECT_THROW(RoutingTable rt(g), std::invalid_argument);
}

}  // namespace
}  // namespace netsel::topo
