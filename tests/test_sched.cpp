// sched::SchedulerService — the placement-as-a-service loop. Covers the
// admit -> queue -> place -> release state machine transitions, admission
// rejection and queue timeouts, the bit-identity of state_digest() across
// thread counts (the bench_service headline contract), exact snapshot
// restore after drain(), the per-tenant degradation ladder under partial
// measurement coverage, the rebalance path honouring a kept_current
// reselect, and the determinism of the JobStream workload generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "topo/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace netsel::sched {
namespace {

topo::TopologyGraph small_fabric(std::uint64_t seed = 11) {
  return topo::fat_tree(topo::fat_tree_for_hosts(32, 8, 2.0, seed));
}

std::vector<topo::NodeId> computes(const topo::TopologyGraph& g) {
  std::vector<topo::NodeId> out;
  for (std::size_t i = 0; i < g.node_count(); ++i)
    if (g.is_compute(static_cast<topo::NodeId>(i)))
      out.push_back(static_cast<topo::NodeId>(i));
  return out;
}

WorkloadConfig pressured_workload(std::uint64_t seed) {
  WorkloadConfig w;
  w.seed = seed;
  w.arrival_rate = 2.0;  // high pressure on a small fabric: queueing fires
  return w;
}

TEST(SchedulerService, LifecycleTransitions) {
  auto g = small_fabric();
  SchedulerService sched(g);

  JobSpec spec;
  spec.nodes = 4;
  spec.duration = 50.0;
  const std::uint64_t id = sched.submit(spec, 5.0);

  sched.run_until(4.0);
  EXPECT_EQ(sched.job(id).state, JobState::Submitted);
  EXPECT_DOUBLE_EQ(sched.now(), 4.0);

  sched.run_until(5.0);  // arrival fires, default cadence places immediately
  const JobRecord& running = sched.job(id);
  EXPECT_EQ(running.state, JobState::Running);
  EXPECT_DOUBLE_EQ(running.start_time, 5.0);
  EXPECT_DOUBLE_EQ(running.wait_time(), 0.0);
  EXPECT_EQ(running.nodes.size(), 4u);
  EXPECT_TRUE(std::is_sorted(running.nodes.begin(), running.nodes.end()));
  EXPECT_GT(running.objective, 0.0);
  EXPECT_GT(running.candidates, 0u);
  EXPECT_EQ(sched.stats().running, 1u);

  sched.run_until(100.0);
  const JobRecord& done = sched.job(id);
  EXPECT_EQ(done.state, JobState::Completed);
  EXPECT_DOUBLE_EQ(done.finish_time, 55.0);
  EXPECT_EQ(done.nodes.size(), 4u);  // final placement kept on the record
  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.submitted, 1u);
  EXPECT_EQ(st.admitted, 1u);
  EXPECT_EQ(st.placed, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.running, 0u);
  EXPECT_EQ(st.queued, 0u);
}

TEST(SchedulerService, AdmissionRejectsWhenQueueFull) {
  auto g = small_fabric();
  SchedulerConfig cfg;
  cfg.max_queue_depth = 1;
  SchedulerService sched(g, cfg);

  JobSpec impossible;
  impossible.nodes = 1000;  // far more hosts than the fabric has
  const std::uint64_t first = sched.submit(impossible, 1.0);
  const std::uint64_t second = sched.submit(impossible, 2.0);
  sched.run_until(3.0);

  EXPECT_EQ(sched.job(first).state, JobState::Queued);
  EXPECT_GT(sched.job(first).infeasible_attempts, 0);
  EXPECT_EQ(sched.job(second).state, JobState::Rejected);
  EXPECT_FALSE(sched.job(second).note.empty());
  EXPECT_EQ(sched.stats().rejected, 1u);
  EXPECT_EQ(sched.queued_jobs(), std::vector<std::uint64_t>{first});
  EXPECT_GT(sched.stats().infeasible_attempts, 0u);
}

TEST(SchedulerService, QueueTimeoutFires) {
  auto g = small_fabric();
  SchedulerConfig cfg;
  cfg.queue_timeout = 10.0;
  SchedulerService sched(g, cfg);

  JobSpec impossible;
  impossible.nodes = 1000;
  const std::uint64_t id = sched.submit(impossible, 0.0);
  sched.run_until(9.0);
  EXPECT_EQ(sched.job(id).state, JobState::Queued);
  sched.run_until(10.0);
  const JobRecord& rec = sched.job(id);
  EXPECT_EQ(rec.state, JobState::TimedOut);
  EXPECT_DOUBLE_EQ(rec.finish_time, 10.0);
  EXPECT_DOUBLE_EQ(rec.wait_time(), -1.0);  // never started
  EXPECT_EQ(sched.stats().timed_out, 1u);
  EXPECT_TRUE(sched.queued_jobs().empty());
}

// The headline contract: a seeded run is a pure function of (topology,
// initial state, submitted jobs, config) — the worker pool and its thread
// count must not be observable in the state digest.
TEST(SchedulerService, DigestBitIdenticalAcrossThreadCounts) {
  auto g = small_fabric(23);
  auto run_once = [&](util::ThreadPool* pool) {
    SchedulerConfig cfg;
    cfg.placement_lanes = 3;
    cfg.backfill_window = 6;
    cfg.schedule_interval = 1.0;  // batched rounds: conflicts can fire
    cfg.rebalance_on_release = true;
    cfg.rebalance_budget = 1;
    cfg.pool = pool;
    SchedulerService sched(g, cfg);
    remos::apply_synthetic_load(sched.snapshot(), 77);
    JobStream stream(pressured_workload(5));
    stream.feed(sched, 40);
    sched.drain();
    EXPECT_GT(sched.stats().placed, 0u);
    return sched.state_digest();
  };

  const std::uint64_t serial = run_once(nullptr);
  util::ThreadPool two(2);
  util::ThreadPool four(4);
  EXPECT_EQ(serial, run_once(&two));
  EXPECT_EQ(serial, run_once(&four));
}

TEST(SchedulerService, DrainRestoresSnapshotExactly) {
  auto g = small_fabric(31);
  remos::NetworkSnapshot reference(g);
  remos::apply_synthetic_load(reference, 99);

  SchedulerConfig cfg;
  cfg.schedule_interval = 0.5;
  cfg.rebalance_on_release = true;
  SchedulerService sched(g, cfg);
  remos::apply_synthetic_load(sched.snapshot(), 99);
  JobStream stream(pressured_workload(9));
  stream.feed(sched, 30);
  sched.drain();
  ASSERT_GT(sched.stats().placed, 0u);
  EXPECT_EQ(sched.stats().running, 0u);

  // Release is an exact inverse of allocate: every sensor reading is back
  // to its pre-run value, bit for bit.
  for (std::size_t n = 0; n < g.node_count(); ++n)
    EXPECT_EQ(sched.snapshot().cpu(static_cast<topo::NodeId>(n)),
              reference.cpu(static_cast<topo::NodeId>(n)))
        << "cpu not restored on node " << n;
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    const auto id = static_cast<topo::LinkId>(l);
    EXPECT_EQ(sched.snapshot().bw_dir(id, true), reference.bw_dir(id, true))
        << "fwd bw not restored on link " << l;
    EXPECT_EQ(sched.snapshot().bw_dir(id, false), reference.bw_dir(id, false))
        << "rev bw not restored on link " << l;
  }
}

TEST(SchedulerService, ConcurrentJobsNeverShareNodes) {
  auto g = small_fabric(37);
  SchedulerConfig cfg;
  cfg.schedule_interval = 1.0;
  cfg.backfill_window = 8;
  SchedulerService sched(g, cfg);
  JobStream stream(pressured_workload(3));
  stream.feed(sched, 30);
  sched.drain();

  const auto& jobs = sched.jobs();
  for (std::size_t a = 0; a < jobs.size(); ++a) {
    if (jobs[a].start_time < 0.0 || jobs[a].migrations > 0) continue;
    for (std::size_t b = a + 1; b < jobs.size(); ++b) {
      if (jobs[b].start_time < 0.0 || jobs[b].migrations > 0) continue;
      if (jobs[a].finish_time <= jobs[b].start_time ||
          jobs[b].finish_time <= jobs[a].start_time)
        continue;  // disjoint in time
      for (topo::NodeId n : jobs[a].nodes)
        EXPECT_FALSE(std::count(jobs[b].nodes.begin(), jobs[b].nodes.end(), n))
            << "jobs " << jobs[a].id << " and " << jobs[b].id
            << " overlap in time and share node " << n;
    }
  }
}

TEST(SchedulerService, LadderFollowsTenantPolicyAndCoverage) {
  auto g = small_fabric(41);
  SchedulerService sched(g);

  TenantPolicy tolerant;  // falls to Smoothed early, resists Prior
  tolerant.degradation.smoothed_below = 0.9;
  tolerant.degradation.prior_below = 0.2;
  TenantPolicy strict;  // abandons measurements quickly
  strict.degradation.smoothed_below = 0.9;
  strict.degradation.prior_below = 0.8;
  sched.set_tenant_policy("tolerant", tolerant);
  sched.set_tenant_policy("strict", strict);

  JobSpec spec;
  spec.nodes = 3;
  spec.duration = 5.0;
  spec.tenant = "tolerant";
  // An impossible fixed requirement: only placeable if the Smoothed rung
  // drops it, as the ladder contract says it must.
  spec.min_cpu_fraction = 2.0;
  sched.set_measurement_coverage(0.5);
  const std::uint64_t smoothed_id = sched.submit(spec, 1.0);
  JobSpec strict_spec;
  strict_spec.nodes = 3;
  strict_spec.duration = 5.0;
  strict_spec.tenant = "strict";
  const std::uint64_t prior_id = sched.submit(strict_spec, 1.0);
  sched.run_until(2.0);

  EXPECT_EQ(sched.job(smoothed_id).state, JobState::Running);
  EXPECT_EQ(sched.job(smoothed_id).ladder, api::DegradationLevel::Smoothed);
  EXPECT_EQ(sched.job(prior_id).state, JobState::Running);
  EXPECT_EQ(sched.job(prior_id).ladder, api::DegradationLevel::Prior);

  // Restored coverage: back to the Full rung, fixed requirements enforced
  // again (the impossible one now blocks placement).
  sched.set_measurement_coverage(1.0);
  const std::uint64_t full_id = sched.submit(strict_spec, 20.0);
  const std::uint64_t blocked_id = [&] {
    JobSpec s = spec;
    s.tenant = "strict";
    return sched.submit(s, 20.0);
  }();
  sched.run_until(21.0);
  EXPECT_EQ(sched.job(full_id).ladder, api::DegradationLevel::Full);
  EXPECT_EQ(sched.job(full_id).state, JobState::Running);
  EXPECT_EQ(sched.job(blocked_id).state, JobState::Queued);
  EXPECT_GT(sched.job(blocked_id).infeasible_attempts, 0);
}

// A rebalance whose reselect comes back kept_current (the unconstrained
// selection is infeasible under the job's requirements and eligibility)
// must leave the job exactly where it runs — no release/re-allocate cycle,
// no migration counted.
TEST(SchedulerService, RebalanceHonoursKeptCurrent) {
  auto g = small_fabric(47);
  const auto hosts = computes(g);
  ASSERT_GE(hosts.size(), 8u);
  const int big = static_cast<int>(hosts.size() * 2 / 3);
  const int small = static_cast<int>(hosts.size()) - big;

  SchedulerConfig cfg;
  cfg.rebalance_on_release = true;
  cfg.rebalance_budget = 2;
  SchedulerService sched(g, cfg);  // idle cluster: every host at cpu 1.0

  // Job A holds most of the fabric with a cpu requirement its *own* loaded
  // hosts no longer meet (1 / (1 + load) = 0.5 < 0.55): at rebalance time
  // every member is ineligible, and the freed remainder of the fabric is
  // too small to refill — reselect keeps the current placement.
  JobSpec a;
  a.nodes = big;
  a.duration = 1000.0;
  a.min_cpu_fraction = 0.55;
  a.load = 1.0;
  const std::uint64_t a_id = sched.submit(a, 0.0);

  JobSpec b;
  b.nodes = small;
  b.duration = 10.0;
  const std::uint64_t b_id = sched.submit(b, 1.0);

  sched.run_until(2.0);
  ASSERT_EQ(sched.job(a_id).state, JobState::Running);
  ASSERT_EQ(sched.job(b_id).state, JobState::Running);
  const std::vector<topo::NodeId> a_nodes = sched.job(a_id).nodes;

  sched.run_until(20.0);  // B departs; its release triggers the rebalance
  EXPECT_EQ(sched.job(b_id).state, JobState::Completed);
  const SchedulerStats st = sched.stats();
  EXPECT_GE(st.rebalance_attempts, 1u);
  EXPECT_EQ(st.rebalance_migrations, 0u);
  EXPECT_EQ(sched.job(a_id).migrations, 0);
  EXPECT_EQ(sched.job(a_id).nodes, a_nodes);
  EXPECT_EQ(sched.job(a_id).state, JobState::Running);
}

TEST(JobStream, DeterministicAndShaped) {
  WorkloadConfig cfg;
  cfg.seed = 17;
  cfg.arrival_rate = 0.5;
  JobStream a(cfg);
  JobStream b(cfg);

  const std::set<std::string> tenants{"fft", "airshed", "mri"};
  double prev = 0.0;
  for (int i = 0; i < 50; ++i) {
    const JobStream::Arrival x = a.next();
    const JobStream::Arrival y = b.next();
    EXPECT_EQ(x.time, y.time);
    EXPECT_EQ(x.spec.tenant, y.spec.tenant);
    EXPECT_EQ(x.spec.nodes, y.spec.nodes);
    EXPECT_EQ(x.spec.duration, y.spec.duration);
    EXPECT_GT(x.time, prev);  // strictly increasing arrival times
    prev = x.time;
    EXPECT_TRUE(tenants.count(x.spec.tenant)) << x.spec.tenant;
    EXPECT_GE(x.spec.nodes, 1);
  }

  // A different seed names a different trace.
  WorkloadConfig other = cfg;
  other.seed = 18;
  JobStream c(other);
  bool differs = false;
  JobStream fresh(cfg);
  for (int i = 0; i < 20 && !differs; ++i)
    differs = c.next().time != fresh.next().time;
  EXPECT_TRUE(differs);

  // node_scale grows template node counts (floor 1).
  WorkloadConfig scaled = cfg;
  scaled.node_scale = 2.0;
  JobStream s(scaled);
  int max_nodes = 0;
  for (int i = 0; i < 20; ++i) max_nodes = std::max(max_nodes, s.next().spec.nodes);
  EXPECT_GE(max_nodes, 8);  // fft's 4 nodes doubled
}

TEST(JobStream, ValidatesConfig) {
  WorkloadConfig bad_rate;
  bad_rate.arrival_rate = 0.0;
  EXPECT_THROW(JobStream{bad_rate}, std::invalid_argument);

  WorkloadConfig bad_weight;
  bad_weight.mix = paper_mix();
  bad_weight.mix[0].weight = -1.0;
  EXPECT_THROW(JobStream{bad_weight}, std::invalid_argument);

  WorkloadConfig zero_weight;
  zero_weight.mix = paper_mix();
  for (JobTemplate& t : zero_weight.mix) t.weight = 0.0;
  EXPECT_THROW(JobStream{zero_weight}, std::invalid_argument);
}

}  // namespace
}  // namespace netsel::sched
