// Tests for the Figure-3 balanced computation + communication algorithm.

#include <gtest/gtest.h>

#include <set>

#include "select/algorithms.hpp"
#include "select/brute_force.hpp"
#include "select/objective.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

TEST(Balanced, ReducesToMaxComputeOnIdleNetwork) {
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  int i = 0;
  for (auto n : g.compute_nodes()) snap.set_loadavg(n, 0.05 * i++);
  SelectionOptions opt;
  opt.num_nodes = 4;
  auto bal = select_balanced(snap, opt);
  auto cpu = select_max_compute(snap, opt);
  ASSERT_TRUE(bal.feasible);
  EXPECT_EQ(bal.nodes, cpu.nodes) << "idle links: cpu optimisation dominates";
}

TEST(Balanced, TradesCpuForBandwidthWhenLinksCongested) {
  // The least-loaded nodes sit behind congested access links; balanced
  // selection must leave them for slightly more loaded nodes with clean
  // links once the bandwidth fraction drops below the cpu fraction.
  auto g = topo::star(6);
  remos::NetworkSnapshot snap(g);
  // h0, h1: completely idle cpu but only 10-12% bandwidth available
  // (distinct values: the paper's stop rule needs strict improvement).
  snap.set_cpu(g.find_node("h0").value(), 1.0);
  snap.set_cpu(g.find_node("h1").value(), 1.0);
  snap.set_bw(0, 10e6);
  snap.set_bw(1, 12e6);
  // h2..h5: 60% cpu, full links.
  for (int i = 2; i < 6; ++i)
    snap.set_cpu(g.find_node("h" + std::to_string(i)).value(), 0.6);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto bal = select_balanced(snap, opt);
  ASSERT_TRUE(bal.feasible);
  // Balanced objective: clean pair gives min(0.6, 1.0) = 0.6;
  // idle-but-congested pair gives min(1.0, 0.1) = 0.1.
  for (auto n : bal.nodes)
    EXPECT_GE(g.node(n).name[1], '2') << "must avoid congested h0/h1";
  EXPECT_NEAR(bal.objective, 0.6, 1e-12);
  // Max-compute would have picked h0/h1.
  auto cpu = select_max_compute(snap, opt);
  EXPECT_EQ(g.node(cpu.nodes[0]).name, "h0");
}

TEST(Balanced, PaperRuleStallsOnPlateauExhaustiveDoesNot) {
  // Two equally congested links form a plateau: removing the first brings
  // no strict improvement, so the paper-exact loop stops with the inferior
  // set; the exhaustive extension sweeps past it.
  auto g = topo::star(6);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 10e6);
  snap.set_bw(1, 10e6);  // exact tie with link 0
  for (int i = 2; i < 6; ++i)
    snap.set_cpu(g.find_node("h" + std::to_string(i)).value(), 0.6);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto paper = select_balanced(snap, opt);
  ASSERT_TRUE(paper.feasible);
  EXPECT_NEAR(paper.objective, 0.1, 1e-12) << "paper rule stops on plateau";
  opt.exhaustive_balanced = true;
  auto full = select_balanced(snap, opt);
  ASSERT_TRUE(full.feasible);
  EXPECT_NEAR(full.objective, 0.6, 1e-12);
  for (auto n : full.nodes) EXPECT_GE(g.node(n).name[1], '2');
}

TEST(Balanced, ObjectiveNeverBelowMaxComputeStart) {
  // The greedy only accepts strictly improving sets, so its objective is at
  // least the value of its max-compute starting point.
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    auto g = topo::random_tree(rng);
    remos::NetworkSnapshot snap(g);
    for (auto n : g.compute_nodes())
      snap.set_loadavg(n, rng.uniform(0.0, 3.0));
    for (std::size_t l = 0; l < g.link_count(); ++l) {
      auto id = static_cast<topo::LinkId>(l);
      snap.set_bw(id, rng.uniform(0.05, 1.0) * snap.maxbw(id));
    }
    SelectionOptions opt;
    opt.num_nodes = 4;
    auto bal = select_balanced(snap, opt);
    ASSERT_TRUE(bal.feasible);
    auto cpu = select_max_compute(snap, opt);
    // Evaluate the max-compute set under the Fig.-3 objective definition:
    // its component is the whole graph, so minbw = global min fraction.
    double global_min_frac = 1.0;
    for (std::size_t l = 0; l < g.link_count(); ++l)
      global_min_frac =
          std::min(global_min_frac, snap.bwfactor(static_cast<topo::LinkId>(l)));
    double start_value = std::min(cpu.min_cpu, global_min_frac);
    EXPECT_GE(bal.objective, start_value - 1e-12);
  }
}

TEST(Balanced, RarelyWorseThanMaxComputePairwise) {
  // Fig. 3 improves a *conservative* (component-edge) bound, so by the
  // exact pairwise objective it can occasionally trail max-compute; across
  // a deterministic sample of random instances it should dominate nearly
  // always.
  int wins_or_ties = 0;
  util::Rng rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    auto g = topo::random_tree(rng);
    remos::NetworkSnapshot snap(g);
    for (auto n : g.compute_nodes())
      snap.set_loadavg(n, rng.uniform(0.0, 3.0));
    for (std::size_t l = 0; l < g.link_count(); ++l) {
      auto id = static_cast<topo::LinkId>(l);
      snap.set_bw(id, rng.uniform(0.05, 1.0) * snap.maxbw(id));
    }
    SelectionOptions opt;
    opt.num_nodes = 3;
    auto bal = select_balanced(snap, opt);
    ASSERT_TRUE(bal.feasible);
    double bal_val = evaluate_set(snap, bal.nodes, opt).balanced;
    double cpu_val =
        evaluate_set(snap, select_max_compute(snap, opt).nodes, opt).balanced;
    if (bal_val >= cpu_val - 1e-12) ++wins_or_ties;
  }
  EXPECT_GE(wins_or_ties, 16);
}

TEST(Balanced, WithinBruteForceBound) {
  // Greedy is a heuristic: certify it never exceeds the true optimum and
  // stays within a sane fraction of it on small instances.
  util::Rng rng(23);
  int at_optimum = 0;
  const int trials = 15;
  for (int trial = 0; trial < trials; ++trial) {
    topo::RandomTreeOptions topt;
    topt.compute_nodes = 8;
    topt.network_nodes = 3;
    auto g = topo::random_tree(rng, topt);
    remos::NetworkSnapshot snap(g);
    for (auto n : g.compute_nodes())
      snap.set_loadavg(n, rng.uniform(0.0, 2.0));
    for (std::size_t l = 0; l < g.link_count(); ++l) {
      auto id = static_cast<topo::LinkId>(l);
      snap.set_bw(id, rng.uniform(0.1, 1.0) * snap.maxbw(id));
    }
    SelectionOptions opt;
    opt.num_nodes = 3;
    auto bal = select_balanced(snap, opt);
    auto exact = brute_force_select(snap, opt, Criterion::Balanced);
    ASSERT_TRUE(bal.feasible);
    ASSERT_TRUE(exact.feasible);
    double bal_val = evaluate_set(snap, bal.nodes, opt).balanced;
    EXPECT_LE(bal_val, exact.objective + 1e-12);
    if (bal_val >= exact.objective - 1e-9) ++at_optimum;
  }
  // The greedy should hit the exact optimum most of the time at this scale.
  EXPECT_GE(at_optimum, trials / 2);
}

TEST(Balanced, PriorityFactorShiftsChoice) {
  // Paper §3.3: prioritising computation by 2 treats 50% CPU like 25%
  // bandwidth. Construct a case where the priority flips the decision.
  auto g = topo::star(4);
  remos::NetworkSnapshot snap(g);
  // Pair A (h0,h1): cpu 0.9 but links at 40/42% (distinct: the paper's
  // greedy only continues through strictly improving removals).
  snap.set_cpu(1, 0.9);
  snap.set_cpu(2, 0.9);
  snap.set_bw(0, 40e6);
  snap.set_bw(1, 42e6);
  // Pair B (h2,h3): cpu 0.5, links full.
  snap.set_cpu(3, 0.5);
  snap.set_cpu(4, 0.5);
  SelectionOptions opt;
  opt.num_nodes = 2;
  // Neutral: A = min(.9,.40) = .40; B = min(.5,1) = .5 -> B wins.
  auto neutral = select_balanced(snap, opt);
  EXPECT_EQ(neutral.nodes, (std::vector<topo::NodeId>{3, 4}));
  EXPECT_NEAR(neutral.objective, 0.5, 1e-12);
  // cpu_priority 2: A = min(.45,.40)=.40; B = min(.25,1)=.25 -> A wins.
  opt.cpu_priority = 2.0;
  auto cpu_prio = select_balanced(snap, opt);
  EXPECT_EQ(cpu_prio.nodes, (std::vector<topo::NodeId>{1, 2}));
  EXPECT_NEAR(cpu_prio.objective, 0.4, 1e-12);
}

TEST(Balanced, SteinerRestrictedExhaustiveUsuallyAtLeastAsGood) {
  // The Steiner-restricted variant scores candidates by the links actually
  // on paths between them — a tighter bound. Under the paper's early-stop
  // rule that backfires (the high initial estimate halts the sweep at the
  // max-compute set), so the variant is paired with the exhaustive sweep;
  // then it should essentially never lose to the paper variant by the true
  // pairwise objective.
  int wins_or_ties = 0;
  util::Rng rng(24);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = topo::random_tree(rng);
    remos::NetworkSnapshot snap(g);
    for (auto n : g.compute_nodes())
      snap.set_loadavg(n, rng.uniform(0.0, 2.0));
    for (std::size_t l = 0; l < g.link_count(); ++l) {
      auto id = static_cast<topo::LinkId>(l);
      snap.set_bw(id, rng.uniform(0.1, 1.0) * snap.maxbw(id));
    }
    SelectionOptions opt;
    opt.num_nodes = 4;
    auto paper = select_balanced(snap, opt);
    opt.steiner_restricted = true;
    opt.exhaustive_balanced = true;
    auto steiner = select_balanced(snap, opt);
    ASSERT_TRUE(paper.feasible);
    ASSERT_TRUE(steiner.feasible);
    opt.steiner_restricted = false;
    opt.exhaustive_balanced = false;
    double paper_val = evaluate_set(snap, paper.nodes, opt).balanced;
    double steiner_val = evaluate_set(snap, steiner.nodes, opt).balanced;
    if (steiner_val >= paper_val - 1e-9) ++wins_or_ties;
  }
  EXPECT_GE(wins_or_ties, 8);
}

TEST(Balanced, InfeasibleAndDegenerateCases) {
  auto g = topo::star(3);
  remos::NetworkSnapshot snap(g);
  SelectionOptions opt;
  opt.num_nodes = 4;
  EXPECT_FALSE(select_balanced(snap, opt).feasible);
  opt.num_nodes = 1;
  auto r = select_balanced(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes.size(), 1u);
  opt.num_nodes = 3;
  r = select_balanced(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes.size(), 3u);
}

TEST(Balanced, MinCpuRequirementExcludesBusyNodes) {
  auto g = topo::star(5);
  remos::NetworkSnapshot snap(g);
  snap.set_loadavg(1, 4.0);  // cpu 0.2
  snap.set_loadavg(2, 4.0);
  SelectionOptions opt;
  opt.num_nodes = 3;
  opt.min_cpu_fraction = 0.5;
  auto r = select_balanced(snap, opt);
  ASSERT_TRUE(r.feasible);
  for (auto n : r.nodes) EXPECT_GE(snap.cpu(n), 0.5);
  opt.num_nodes = 4;
  EXPECT_FALSE(select_balanced(snap, opt).feasible);
}

}  // namespace
}  // namespace netsel::select
