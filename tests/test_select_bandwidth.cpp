// Tests for the Figure-2 algorithm, including the paper's optimality claim:
// on an acyclic topology, repeatedly deleting the minimum-available-bandwidth
// edge yields a node set maximising the minimum pairwise available bandwidth.
// We certify this against brute-force enumeration over random trees.

#include <gtest/gtest.h>

#include <set>

#include "select/algorithms.hpp"
#include "select/brute_force.hpp"
#include "select/objective.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

TEST(MaxBandwidth, AvoidsCongestedSubtree) {
  // Fig. 4 scenario: traffic from m-16 to m-18 congests the suez subtree;
  // a 4-node selection must avoid suez hosts.
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  auto congest = [&](const char* host) {
    auto n = g.find_node(host).value();
    snap.set_bw(g.links_of(n)[0], 1e6);
  };
  congest("m-16");
  congest("m-18");
  SelectionOptions opt;
  opt.num_nodes = 4;
  auto r = select_max_bandwidth(snap, opt);
  ASSERT_TRUE(r.feasible);
  for (auto n : r.nodes) {
    EXPECT_NE(g.node(n).name, "m-16");
    EXPECT_NE(g.node(n).name, "m-18");
  }
  EXPECT_GE(r.objective, 100e6 * 0.999);
}

TEST(MaxBandwidth, PrefersOneSwitchWhenTrunkBusy) {
  // Two-level tree with a busy trunk to switch 0: selection of 3 nodes
  // should cluster under one uncongested leaf switch.
  auto g = topo::two_level_tree(3, 3);
  remos::NetworkSnapshot snap(g);
  // Congest the root--sw0 trunk (first link of the generator per switch).
  auto sw0 = g.find_node("sw0").value();
  for (auto l : g.links_of(sw0)) {
    const auto& lk = g.link(l);
    if (lk.a == g.find_node("root").value() ||
        lk.b == g.find_node("root").value())
      snap.set_bw(l, 2e6);
  }
  SelectionOptions opt;
  opt.num_nodes = 3;
  auto r = select_max_bandwidth(snap, opt);
  ASSERT_TRUE(r.feasible);
  // All three selected hosts under the same switch (pairwise bw 100).
  auto ev = evaluate_set(snap, r.nodes, opt);
  EXPECT_NEAR(ev.min_pair_bw, 100e6, 1.0);
}

TEST(MaxBandwidth, SingleNodeRequest) {
  auto g = topo::star(3);
  remos::NetworkSnapshot snap(g);
  SelectionOptions opt;
  opt.num_nodes = 1;
  auto r = select_max_bandwidth(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes.size(), 1u);
}

TEST(MaxBandwidth, InfeasibleWhenNotEnoughNodes) {
  auto g = topo::star(3);
  remos::NetworkSnapshot snap(g);
  SelectionOptions opt;
  opt.num_nodes = 4;
  EXPECT_FALSE(select_max_bandwidth(snap, opt).feasible);
}

TEST(MaxBandwidth, ResultIsConnectedAndCorrectSize) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = topo::random_tree(rng);
    remos::NetworkSnapshot snap(g);
    SelectionOptions opt;
    opt.num_nodes = 5;
    auto r = select_max_bandwidth(snap, opt);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.nodes.size(), 5u);
    std::set<topo::NodeId> uniq(r.nodes.begin(), r.nodes.end());
    EXPECT_EQ(uniq.size(), 5u);
    auto ev = evaluate_set(snap, r.nodes, opt);
    EXPECT_TRUE(ev.connected);
  }
}

// ---- Optimality sweep (the paper's central claim for Fig. 2). ----

struct SweepParam {
  std::uint64_t seed;
  int compute_nodes;
  int network_nodes;
  int m;
};

class Fig2Optimality : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Fig2Optimality, MatchesBruteForceOnRandomTrees) {
  const auto p = GetParam();
  util::Rng rng(p.seed);
  topo::RandomTreeOptions topt;
  topt.compute_nodes = p.compute_nodes;
  topt.network_nodes = p.network_nodes;
  topt.min_bw = 1e6;
  topt.max_bw = 100e6;
  auto g = topo::random_tree(rng, topt);
  remos::NetworkSnapshot snap(g);
  // Randomise availability per link, not just capacity.
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    snap.set_bw(id, rng.uniform(0.05, 1.0) * snap.maxbw(id));
  }
  SelectionOptions opt;
  opt.num_nodes = p.m;
  auto algo = select_max_bandwidth(snap, opt);
  auto exact = brute_force_select(snap, opt, Criterion::MaxBandwidth);
  ASSERT_TRUE(algo.feasible);
  ASSERT_TRUE(exact.feasible);
  auto algo_ev = evaluate_set(snap, algo.nodes, opt);
  EXPECT_NEAR(algo_ev.min_pair_bw, exact.objective,
              exact.objective * 1e-12)
      << "Fig. 2 must be optimal on acyclic graphs (seed " << p.seed << ")";
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  std::uint64_t seed = 100;
  for (int nc : {6, 10, 14}) {
    for (int m : {2, 3, 4, 5}) {
      for (int rep = 0; rep < 4; ++rep) {
        out.push_back({seed++, nc, 3 + (rep % 3), m});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, Fig2Optimality,
                         ::testing::ValuesIn(sweep_params()));

TEST(MaxBandwidth, IterationCountBounded) {
  util::Rng rng(9);
  topo::RandomTreeOptions topt;
  topt.compute_nodes = 30;
  topt.network_nodes = 8;
  auto g = topo::random_tree(rng, topt);
  remos::NetworkSnapshot snap(g);
  SelectionOptions opt;
  opt.num_nodes = 4;
  auto r = select_max_bandwidth(snap, opt);
  ASSERT_TRUE(r.feasible);
  // At most one removal per edge.
  EXPECT_LE(r.iterations, static_cast<int>(g.link_count()));
}

TEST(MaxBandwidth, MinBwRequirementFiltersLinks) {
  auto g = topo::dumbbell(3, 3);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 20e6);  // bottleneck availability
  SelectionOptions opt;
  opt.num_nodes = 6;
  opt.min_bw_bps = 50e6;
  // All six nodes require the bottleneck; the constraint kills it.
  EXPECT_FALSE(select_max_bandwidth(snap, opt).feasible);
  opt.num_nodes = 3;
  auto r = select_max_bandwidth(snap, opt);
  ASSERT_TRUE(r.feasible);
  auto ev = evaluate_set(snap, r.nodes, opt);
  EXPECT_GE(ev.min_pair_bw, 50e6);
}

}  // namespace
}  // namespace netsel::select
