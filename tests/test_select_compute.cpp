#include <gtest/gtest.h>

#include <set>

#include "select/algorithms.hpp"
#include "select/brute_force.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

remos::NetworkSnapshot loaded_testbed() {
  static topo::TopologyGraph g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  // Load averages rise with the node index: m-1 least loaded.
  int i = 0;
  for (topo::NodeId n : g.compute_nodes()) {
    snap.set_loadavg(n, 0.1 * static_cast<double>(i++));
  }
  return snap;
}

TEST(MaxCompute, PicksLeastLoadedNodes) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 4;
  auto r = select_max_compute(snap, opt);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.nodes.size(), 4u);
  const auto& g = snap.graph();
  EXPECT_EQ(g.node(r.nodes[0]).name, "m-1");
  EXPECT_EQ(g.node(r.nodes[1]).name, "m-2");
  EXPECT_EQ(g.node(r.nodes[2]).name, "m-3");
  EXPECT_EQ(g.node(r.nodes[3]).name, "m-4");
  EXPECT_NEAR(r.min_cpu, 1.0 / 1.3, 1e-12);  // the m-4 cpu value
  EXPECT_DOUBLE_EQ(r.objective, r.min_cpu);
}

TEST(MaxCompute, MatchesBruteForce) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 5;
  auto algo = select_max_compute(snap, opt);
  auto exact = brute_force_select(snap, opt, Criterion::MaxCompute);
  ASSERT_TRUE(algo.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_DOUBLE_EQ(algo.objective, exact.objective);
}

TEST(MaxCompute, AllNodesWhenMEqualsCount) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 18;
  auto r = select_max_compute(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes.size(), 18u);
}

TEST(MaxCompute, InfeasibleWhenTooManyRequested) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 19;
  auto r = select_max_compute(snap, opt);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.note.empty());
}

TEST(MaxCompute, TieBreaksDeterministically) {
  auto g = topo::star(6);
  remos::NetworkSnapshot snap(g);  // all cpus equal
  SelectionOptions opt;
  opt.num_nodes = 3;
  auto r1 = select_max_compute(snap, opt);
  auto r2 = select_max_compute(snap, opt);
  ASSERT_TRUE(r1.feasible);
  EXPECT_EQ(r1.nodes, r2.nodes);
  // Lower ids win ties.
  EXPECT_EQ(r1.nodes, (std::vector<topo::NodeId>{1, 2, 3}));
}

TEST(MaxCompute, RespectsMinBwConstraintComponent) {
  // Dumbbell with a congested bottleneck: requiring 50 Mbps forces the
  // selection into one side even if the other side has idle nodes.
  auto g = topo::dumbbell(3, 3);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 5e6);  // bottleneck nearly full
  // Left nodes loaded, right nodes idle.
  for (auto n : g.compute_nodes()) {
    if (g.node(n).name[0] == 'L') snap.set_loadavg(n, 1.0);
  }
  SelectionOptions opt;
  opt.num_nodes = 3;
  opt.min_bw_bps = 50e6;
  auto r = select_max_compute(snap, opt);
  ASSERT_TRUE(r.feasible);
  for (auto n : r.nodes) EXPECT_EQ(g.node(n).name[0], 'R');
  // Asking for 4 nodes under the same constraint is infeasible.
  opt.num_nodes = 4;
  EXPECT_FALSE(select_max_compute(snap, opt).feasible);
}

TEST(MaxCompute, HonoursEligibilityMask) {
  auto snap = loaded_testbed();
  const auto& g = snap.graph();
  SelectionOptions opt;
  opt.num_nodes = 2;
  opt.eligible.assign(g.node_count(), 0);
  // Only the three most loaded nodes are eligible.
  opt.eligible[static_cast<std::size_t>(g.find_node("m-16").value())] = 1;
  opt.eligible[static_cast<std::size_t>(g.find_node("m-17").value())] = 1;
  opt.eligible[static_cast<std::size_t>(g.find_node("m-18").value())] = 1;
  auto r = select_max_compute(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(g.node(r.nodes[0]).name, "m-16");
  EXPECT_EQ(g.node(r.nodes[1]).name, "m-17");
}

TEST(MaxCompute, OptionValidation) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 0;
  EXPECT_THROW(select_max_compute(snap, opt), std::invalid_argument);
  opt.num_nodes = 2;
  opt.cpu_priority = 0.0;
  EXPECT_THROW(select_max_compute(snap, opt), std::invalid_argument);
  opt = SelectionOptions{};
  opt.num_nodes = 2;
  opt.eligible.assign(3, 1);  // wrong size
  EXPECT_THROW(select_max_compute(snap, opt), std::invalid_argument);
}

TEST(Baselines, RandomIsDeterministicPerRng) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 4;
  util::Rng r1(5), r2(5), r3(6);
  auto a = select_random(snap, opt, r1);
  auto b = select_random(snap, opt, r2);
  auto c = select_random(snap, opt, r3);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.nodes, b.nodes);
  // Different seed should usually differ; 18 choose 4 makes collision rare.
  EXPECT_NE(a.nodes, c.nodes);
}

TEST(Baselines, RandomCoversThePool) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 4;
  util::Rng rng(1);
  std::set<topo::NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    auto r = select_random(snap, opt, rng);
    seen.insert(r.nodes.begin(), r.nodes.end());
  }
  EXPECT_EQ(seen.size(), 18u) << "every node should be picked eventually";
}

TEST(Baselines, StaticPicksFirstM) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 3;
  auto r = select_static(snap, opt);
  ASSERT_TRUE(r.feasible);
  const auto& g = snap.graph();
  EXPECT_EQ(g.node(r.nodes[0]).name, "m-1");
  EXPECT_EQ(g.node(r.nodes[1]).name, "m-2");
  EXPECT_EQ(g.node(r.nodes[2]).name, "m-3");
}

TEST(Baselines, InfeasibleWhenPoolTooSmall) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 50;
  util::Rng rng(1);
  EXPECT_FALSE(select_random(snap, opt, rng).feasible);
  EXPECT_FALSE(select_static(snap, opt).feasible);
}

TEST(SelectNodes, DispatchesByCriterion) {
  auto snap = loaded_testbed();
  SelectionOptions opt;
  opt.num_nodes = 4;
  auto a = select_nodes(Criterion::MaxCompute, snap, opt);
  auto b = select_max_compute(snap, opt);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_STREQ(criterion_name(Criterion::MaxCompute), "max-compute");
  EXPECT_STREQ(criterion_name(Criterion::MaxBandwidth), "max-bandwidth");
  EXPECT_STREQ(criterion_name(Criterion::Balanced), "balanced");
}

}  // namespace
}  // namespace netsel::select
