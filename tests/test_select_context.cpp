// Golden-equivalence suite for the SelectionContext-based algorithm
// implementations: the context fast paths (offline reverse union-find for
// Fig. 2, the merge forest for Fig. 3, cached bottleneck rows for
// evaluate_set and brute force) must reproduce the retained naive reference
// implementations (select/reference.hpp) *exactly* — identical node sets,
// bit-identical objective figures, identical iteration counts — across a
// broad randomized sweep of topologies, loads and option combinations. Also
// covers the context's epoch-invalidation contract, the cyclic-graph
// behaviour, and the finite single-node evaluation convention.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "select/algorithms.hpp"
#include "select/brute_force.hpp"
#include "select/context.hpp"
#include "select/objective.hpp"
#include "select/reference.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

struct Instance {
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

/// A randomized tree topology + snapshot, everything derived from the seed:
/// size, shape, loads, availabilities.
Instance random_instance(std::uint64_t seed) {
  util::Rng rng(seed * 7919 + 1);
  topo::RandomTreeOptions topt;
  topt.compute_nodes = static_cast<int>(rng.uniform_int(5, 40));
  topt.network_nodes = static_cast<int>(rng.uniform_int(2, 10));
  topt.hosts_are_leaves = rng.uniform_int(0, 1) == 0;
  Instance inst;
  inst.graph =
      std::make_unique<topo::TopologyGraph>(topo::random_tree(rng, topt));
  inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
  for (auto n : inst.graph->compute_nodes())
    inst.snap->set_loadavg(n, rng.uniform(0.0, 3.0));
  for (std::size_t l = 0; l < inst.graph->link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    inst.snap->set_bw(id, rng.uniform(0.05, 1.0) * inst.snap->maxbw(id));
  }
  return inst;
}

/// Randomized options derived from the same seed: m, priorities, thresholds,
/// reference capacities, eligibility mask.
SelectionOptions random_options(std::uint64_t seed, const Instance& inst) {
  util::Rng rng(seed * 104729 + 2);
  SelectionOptions opt;
  opt.num_nodes = static_cast<int>(rng.uniform_int(1, 8));
  opt.cpu_priority = rng.uniform_int(0, 2) == 0 ? 2.0 : 1.0;
  opt.bw_priority = rng.uniform_int(0, 2) == 0 ? 0.5 : 1.0;
  if (rng.uniform_int(0, 2) == 0) opt.reference_bw = topo::k100Mbps;
  if (rng.uniform_int(0, 2) == 0)
    opt.min_bw_bps = rng.uniform(5.0, 60.0) * topo::kMbps;
  if (rng.uniform_int(0, 3) == 0) opt.min_cpu_fraction = rng.uniform(0.1, 0.5);
  if (rng.uniform_int(0, 2) == 0) {
    // Mask out ~1/4 of the compute nodes.
    opt.eligible.assign(inst.graph->node_count(), 0);
    for (auto n : inst.graph->compute_nodes())
      opt.eligible[static_cast<std::size_t>(n)] =
          rng.uniform_int(0, 3) == 0 ? 0 : 1;
  }
  return opt;
}

void expect_same_result(const SelectionResult& fast, const SelectionResult& ref,
                        const std::string& what) {
  ASSERT_EQ(fast.feasible, ref.feasible) << what;
  EXPECT_EQ(fast.nodes, ref.nodes) << what;
  EXPECT_EQ(fast.iterations, ref.iterations) << what;
  if (!fast.feasible) return;
  EXPECT_DOUBLE_EQ(fast.min_cpu, ref.min_cpu) << what;
  // The single-node bandwidth figures intentionally diverge: the reference
  // keeps the historical +inf convention, the production path reports the
  // finite NIC availability.
  if (fast.nodes.size() >= 2) {
    EXPECT_DOUBLE_EQ(fast.min_bw_fraction, ref.min_bw_fraction) << what;
    EXPECT_DOUBLE_EQ(fast.objective, ref.objective) << what;
  }
}

constexpr std::uint64_t kSweepSeeds = 120;  // >= 100 random topologies

TEST(GoldenEquivalence, MaxBandwidthMatchesReferenceLoop) {
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    auto inst = random_instance(seed);
    auto opt = random_options(seed, inst);
    SelectionContext ctx(*inst.snap);
    expect_same_result(select_max_bandwidth(ctx, opt),
                       detail::reference_select_max_bandwidth(*inst.snap, opt),
                       "fig2 seed " + std::to_string(seed));
  }
}

TEST(GoldenEquivalence, BalancedMatchesReferenceLoop) {
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    auto inst = random_instance(seed);
    auto opt = random_options(seed, inst);
    SelectionContext ctx(*inst.snap);
    expect_same_result(select_balanced(ctx, opt),
                       detail::reference_select_balanced(*inst.snap, opt),
                       "fig3 seed " + std::to_string(seed));
  }
}

TEST(GoldenEquivalence, ExhaustiveBalancedMatchesReferenceLoop) {
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    auto inst = random_instance(seed);
    auto opt = random_options(seed, inst);
    opt.exhaustive_balanced = true;
    SelectionContext ctx(*inst.snap);
    expect_same_result(select_balanced(ctx, opt),
                       detail::reference_select_balanced(*inst.snap, opt),
                       "fig3ex seed " + std::to_string(seed));
  }
}

TEST(GoldenEquivalence, MaxComputeMatchesReference) {
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    auto inst = random_instance(seed);
    auto opt = random_options(seed, inst);
    SelectionContext ctx(*inst.snap);
    expect_same_result(select_max_compute(ctx, opt),
                       detail::reference_select_max_compute(*inst.snap, opt),
                       "maxcpu seed " + std::to_string(seed));
  }
}

TEST(GoldenEquivalence, EvaluateSetMatchesReferenceBfs) {
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    auto inst = random_instance(seed);
    auto opt = random_options(seed, inst);
    auto computes = inst.graph->compute_nodes();
    util::Rng rng(seed * 31 + 5);
    // A few random subsets of size >= 2 per instance.
    for (int rep = 0; rep < 3; ++rep) {
      auto size =
          static_cast<std::size_t>(rng.uniform_int(
              2, static_cast<std::int64_t>(std::min<std::size_t>(
                     computes.size(), 6))));
      std::vector<topo::NodeId> nodes;
      for (std::size_t i = 0; i < size; ++i) {
        auto n = computes[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(computes.size()) - 1))];
        nodes.push_back(n);
      }
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
      if (nodes.size() < 2) continue;
      SelectionContext ctx(*inst.snap);
      auto fast = evaluate_set(ctx, nodes, opt);
      auto ref = detail::reference_evaluate_set(*inst.snap, nodes, opt);
      EXPECT_EQ(fast.connected, ref.connected) << seed;
      EXPECT_DOUBLE_EQ(fast.min_cpu, ref.min_cpu) << seed;
      EXPECT_DOUBLE_EQ(fast.min_pair_bw, ref.min_pair_bw) << seed;
      EXPECT_DOUBLE_EQ(fast.min_pair_bw_fraction, ref.min_pair_bw_fraction)
          << seed;
      EXPECT_DOUBLE_EQ(fast.balanced, ref.balanced) << seed;
      EXPECT_DOUBLE_EQ(fast.max_pair_latency, ref.max_pair_latency) << seed;
    }
  }
}

TEST(GoldenEquivalence, BruteForceMatchesAcrossEntryPoints) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto inst = random_instance(seed);
    SelectionOptions opt;
    opt.num_nodes = 3;
    SelectionContext ctx(*inst.snap);
    for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                        Criterion::Balanced}) {
      auto via_ctx = brute_force_select(ctx, opt, c);
      auto via_snap = brute_force_select(*inst.snap, opt, c);
      EXPECT_EQ(via_ctx.feasible, via_snap.feasible);
      EXPECT_EQ(via_ctx.nodes, via_snap.nodes);
      EXPECT_DOUBLE_EQ(via_ctx.objective, via_snap.objective);
    }
  }
}

TEST(GoldenEquivalence, SteinerRestrictedFallsBackToReference) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = random_instance(seed);
    auto opt = random_options(seed, inst);
    opt.steiner_restricted = true;
    SelectionContext ctx(*inst.snap);
    expect_same_result(select_balanced(ctx, opt),
                       detail::reference_select_balanced(*inst.snap, opt),
                       "steiner seed " + std::to_string(seed));
  }
}

/// A topology with a router cycle: sw0-sw1-sw2-sw0 plus hosts.
Instance cyclic_instance(std::uint64_t seed) {
  util::Rng rng(seed * 17 + 3);
  Instance inst;
  inst.graph = std::make_unique<topo::TopologyGraph>();
  auto& g = *inst.graph;
  auto sw0 = g.add_network("sw0");
  auto sw1 = g.add_network("sw1");
  auto sw2 = g.add_network("sw2");
  g.add_link(sw0, sw1, topo::k100Mbps);
  g.add_link(sw1, sw2, topo::k100Mbps);
  g.add_link(sw2, sw0, topo::k100Mbps);
  for (int i = 0; i < 9; ++i) {
    auto h = g.add_compute("h" + std::to_string(i));
    g.add_link(i % 3 == 0 ? sw0 : (i % 3 == 1 ? sw1 : sw2), h,
               topo::k100Mbps);
  }
  inst.snap = std::make_unique<remos::NetworkSnapshot>(g);
  for (auto n : g.compute_nodes())
    inst.snap->set_loadavg(n, rng.uniform(0.0, 2.0));
  for (std::size_t l = 0; l < g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    inst.snap->set_bw(id, rng.uniform(0.1, 1.0) * inst.snap->maxbw(id));
  }
  return inst;
}

TEST(CyclicGraphs, Fig2ReverseReplayHandlesCycles) {
  // The Fig. 2 offline replay is valid on any graph (feasibility is monotone
  // under deletion regardless of cycles); check it against the literal loop.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto inst = cyclic_instance(seed);
    ASSERT_FALSE(inst.graph->is_acyclic());
    SelectionOptions opt;
    opt.num_nodes = static_cast<int>(seed % 5) + 1;
    SelectionContext ctx(*inst.snap);
    expect_same_result(select_max_bandwidth(ctx, opt),
                       detail::reference_select_max_bandwidth(*inst.snap, opt),
                       "cyclic fig2 seed " + std::to_string(seed));
  }
}

TEST(CyclicGraphs, BalancedMergeForestHandlesCycles) {
  // Cycle deletions don't split a component — they raise its internal
  // min-fraction. The merge-forest replay records those as re-evaluation
  // events; check bit-identity against the literal loop on router cycles.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto inst = cyclic_instance(seed);
    SelectionOptions opt;
    opt.num_nodes = static_cast<int>(seed % 4) + 2;
    SelectionContext ctx(*inst.snap);
    EXPECT_FALSE(ctx.acyclic());
    expect_same_result(select_balanced(ctx, opt),
                       detail::reference_select_balanced(*inst.snap, opt),
                       "cyclic fig3 seed " + std::to_string(seed));
  }
}

TEST(CyclicGraphs, BalancedHandlesCyclesUnderGeneralisations) {
  // Same bit-identity with the §3.3 generalisations in play: reference
  // capacities (rounded fractions), priorities, fixed requirements, and the
  // exhaustive-sweep variant, all on cyclic graphs.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    auto inst = cyclic_instance(seed);
    util::Rng rng(seed ^ 0xfeedULL);
    SelectionOptions opt;
    opt.num_nodes = static_cast<int>(seed % 4) + 1;
    if (rng.bernoulli(0.5)) opt.reference_bw = topo::k100Mbps;
    if (rng.bernoulli(0.5)) opt.cpu_priority = rng.uniform(0.5, 2.0);
    if (rng.bernoulli(0.5)) opt.bw_priority = rng.uniform(0.5, 2.0);
    if (rng.bernoulli(0.4)) opt.min_bw_bps = rng.uniform(0.0, 60e6);
    if (rng.bernoulli(0.4)) opt.min_cpu_fraction = rng.uniform(0.0, 0.5);
    opt.exhaustive_balanced = rng.bernoulli(0.5);
    SelectionContext ctx(*inst.snap);
    expect_same_result(select_balanced(ctx, opt),
                       detail::reference_select_balanced(*inst.snap, opt),
                       "cyclic general seed " + std::to_string(seed));
  }
}

TEST(EpochInvalidation, MutationsAreObservedThroughTheContext) {
  auto inst = random_instance(42);
  SelectionOptions opt;
  opt.num_nodes = 4;
  SelectionContext ctx(*inst.snap);

  auto before = select_max_bandwidth(ctx, opt);
  ASSERT_TRUE(before.feasible);
  EXPECT_TRUE(ctx.current());

  // Degrade every link touched by the previous winner's component; the
  // context must notice the snapshot moved on and recompute.
  const auto e0 = inst.snap->epoch();
  for (std::size_t l = 0; l < inst.graph->link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    inst.snap->set_bw(id, inst.snap->bw(id) * 0.5);
  }
  EXPECT_GT(inst.snap->epoch(), e0);
  EXPECT_FALSE(ctx.current());

  auto after = select_max_bandwidth(ctx, opt);
  expect_same_result(
      after, detail::reference_select_max_bandwidth(*inst.snap, opt),
      "post-mutation");
  EXPECT_TRUE(ctx.current());

  // Unrelated mutation kinds bump the epoch too.
  inst.snap->set_cpu(inst.graph->compute_nodes()[0], 0.123);
  EXPECT_FALSE(ctx.current());
  auto again = select_balanced(ctx, opt);
  expect_same_result(again,
                     detail::reference_select_balanced(*inst.snap, opt),
                     "post-cpu-mutation");
}

TEST(SingleNodeConvention, EvaluateSetReportsNicAvailability) {
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto a = g.add_compute("a");
  auto b = g.add_compute("b");
  auto la = g.add_link(sw, a, topo::k100Mbps);
  g.add_link(sw, b, topo::k100Mbps);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(la, 40e6);

  SetEvaluation ev = evaluate_set(snap, {a});
  EXPECT_TRUE(ev.connected);
  EXPECT_TRUE(std::isfinite(ev.min_pair_bw));
  EXPECT_DOUBLE_EQ(ev.min_pair_bw, 40e6);
  EXPECT_DOUBLE_EQ(ev.min_pair_bw_fraction, 0.4);
  EXPECT_TRUE(std::isfinite(ev.balanced));

  // The historical reference keeps +inf (documented divergence).
  auto ref = detail::reference_evaluate_set(snap, {a});
  EXPECT_TRUE(std::isinf(ref.min_pair_bw));

  // An isolated compute node reports zero NIC availability.
  topo::TopologyGraph g2;
  auto lone = g2.add_compute("lone");
  remos::NetworkSnapshot snap2(g2);
  SetEvaluation ev2 = evaluate_set(snap2, {lone});
  EXPECT_DOUBLE_EQ(ev2.min_pair_bw, 0.0);
  EXPECT_DOUBLE_EQ(ev2.min_pair_bw_fraction, 0.0);
}

TEST(ContextCaching, RepeatedQueriesReuseState) {
  auto inst = random_instance(7);
  SelectionOptions opt;
  opt.num_nodes = 3;
  SelectionContext ctx(*inst.snap);
  auto first = select_balanced(ctx, opt);
  for (int i = 0; i < 5; ++i) {
    auto r = select_balanced(ctx, opt);
    EXPECT_EQ(r.nodes, first.nodes);
    EXPECT_DOUBLE_EQ(r.objective, first.objective);
  }
  EXPECT_TRUE(ctx.current());
  EXPECT_EQ(ctx.epoch(), inst.snap->epoch());
}

}  // namespace
}  // namespace netsel::select
