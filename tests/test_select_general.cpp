// Tests for the §3.3 generalisations: heterogeneous links and nodes
// (reference normalisation), bidirectional links, cyclic topologies, and
// the brute-force reference optimiser itself.

#include <gtest/gtest.h>

#include "select/algorithms.hpp"
#include "select/brute_force.hpp"
#include "select/objective.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

TEST(Heterogeneous, ReferenceLinkNormalisation) {
  // Paper: "if the network contains 100Mbps and 155Mbps links, the
  // reference link will determine if 50% available bandwidth is 50Mbps or
  // 77.5Mbps". With a 100 Mbps reference, a half-free ATM link scores
  // 77.5/100 = 0.775 rather than 0.5.
  auto g = topo::testbed();
  remos::NetworkSnapshot snap(g);
  topo::LinkId atm = 1;  // gibraltar--suez by construction
  ASSERT_DOUBLE_EQ(snap.maxbw(atm), topo::k155Mbps);
  snap.set_bw(atm, 77.5e6);
  SelectionOptions per_link;   // homogeneous interpretation
  SelectionOptions reference;  // 100 Mbps reference link
  reference.reference_bw = 100e6;
  EXPECT_DOUBLE_EQ(link_fraction(snap, atm, per_link), 0.5);
  EXPECT_DOUBLE_EQ(link_fraction(snap, atm, reference), 0.775);
}

TEST(Heterogeneous, ReferenceLinkChangesBalancedDecision) {
  // One pair behind a half-used 155 Mbps link vs one pair with cpu 0.6 on
  // clean links: per-link fractions say 0.5 < 0.6, a 100 Mbps reference
  // says 0.775 > 0.6.
  topo::TopologyGraph g;
  auto sw1 = g.add_network("sw1");
  auto sw2 = g.add_network("sw2");
  auto a1 = g.add_compute("a1");
  auto a2 = g.add_compute("a2");
  auto b1 = g.add_compute("b1");
  auto b2 = g.add_compute("b2");
  g.add_link(sw1, sw2, 10e6);  // keep the graph connected but undesirable
  auto atm1 = g.add_link(sw1, a1, 155e6);
  auto atm2 = g.add_link(sw1, a2, 155e6);
  g.add_link(sw2, b1, 100e6);
  g.add_link(sw2, b2, 100e6);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(atm1, 77.5e6);
  snap.set_bw(atm2, 77.0e6);  // distinct: the Fig.-3 loop needs strict gains
  snap.set_cpu(b1, 0.6);
  snap.set_cpu(b2, 0.6);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto per_link = select_balanced(snap, opt);
  ASSERT_TRUE(per_link.feasible);
  EXPECT_EQ(per_link.nodes, (std::vector<topo::NodeId>{b1, b2}));
  opt.reference_bw = 100e6;
  auto ref = select_balanced(snap, opt);
  ASSERT_TRUE(ref.feasible);
  EXPECT_EQ(ref.nodes, (std::vector<topo::NodeId>{a1, a2}));
}

TEST(Heterogeneous, NodeCapacitiesInReferenceUnits) {
  // A 4x node at 50% availability delivers 2 reference units — better than
  // an idle 1x node.
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto big = g.add_compute("big", 4.0);
  auto small1 = g.add_compute("s1", 1.0);
  auto small2 = g.add_compute("s2", 1.0);
  g.add_link(sw, big, 100e6);
  g.add_link(sw, small1, 100e6);
  g.add_link(sw, small2, 100e6);
  remos::NetworkSnapshot snap(g);
  snap.set_cpu(big, 0.5);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto r = select_max_compute(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(std::find(r.nodes.begin(), r.nodes.end(), big) != r.nodes.end());
  EXPECT_DOUBLE_EQ(r.min_cpu, 1.0);  // the idle small node
}

TEST(Bidirectional, MinOfDirectionsGoverns) {
  // Paper §3.3: "The available capacity of a bidirectional link is taken to
  // be the minimum of the available capacities in each direction."
  topo::TopologyGraph g;
  auto sw = g.add_network("sw");
  auto a = g.add_compute("a");
  auto b = g.add_compute("b");
  g.add_link(sw, a, 100e6, 10e6);  // asymmetric
  g.add_link(sw, b, 100e6);
  EXPECT_DOUBLE_EQ(g.link(0).capacity_min(), 10e6);
  remos::NetworkSnapshot snap(g);
  EXPECT_DOUBLE_EQ(snap.bw(0), 10e6);
  EXPECT_DOUBLE_EQ(snap.bwfactor(0), 1.0);
}

TEST(CyclicTopology, SelectionUsesStaticRoutes) {
  // Ring of three switches with one host each; evaluation follows the
  // fixed shortest path, matching static routing (§3.3).
  topo::TopologyGraph g;
  auto s0 = g.add_network("s0");
  auto s1 = g.add_network("s1");
  auto s2 = g.add_network("s2");
  auto h0 = g.add_compute("h0");
  auto h1 = g.add_compute("h1");
  auto h2 = g.add_compute("h2");
  g.add_link(s0, s1, 100e6);
  g.add_link(s1, s2, 100e6);
  g.add_link(s2, s0, 100e6);
  g.add_link(s0, h0, 100e6);
  g.add_link(s1, h1, 100e6);
  g.add_link(s2, h2, 100e6);
  EXPECT_FALSE(g.is_acyclic());
  remos::NetworkSnapshot snap(g);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto r = select_balanced(snap, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes.size(), 2u);
  auto ev = evaluate_set(snap, r.nodes, opt);
  EXPECT_TRUE(ev.connected);
  EXPECT_NEAR(ev.min_pair_bw, 100e6, 1.0);
}

TEST(BruteForce, FindsObviousOptimum) {
  auto g = topo::star(5);
  remos::NetworkSnapshot snap(g);
  snap.set_cpu(1, 0.2);
  snap.set_cpu(2, 0.9);
  snap.set_cpu(3, 0.8);
  snap.set_cpu(4, 0.3);
  snap.set_cpu(5, 0.7);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto r = brute_force_select(snap, opt, Criterion::MaxCompute);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.nodes, (std::vector<topo::NodeId>{2, 3}));
  EXPECT_DOUBLE_EQ(r.objective, 0.8);
  EXPECT_EQ(r.subsets_examined, 10u);  // C(5,2)
}

TEST(BruteForce, HonoursMinBwConstraint) {
  auto g = topo::dumbbell(2, 2);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 10e6);  // bottleneck
  // Make the cross pair the cpu-best.
  snap.set_cpu(g.find_node("L0").value(), 1.0);
  snap.set_cpu(g.find_node("R0").value(), 1.0);
  snap.set_cpu(g.find_node("L1").value(), 0.4);
  snap.set_cpu(g.find_node("R1").value(), 0.5);
  SelectionOptions opt;
  opt.num_nodes = 2;
  opt.min_bw_bps = 50e6;
  auto r = brute_force_select(snap, opt, Criterion::MaxCompute);
  ASSERT_TRUE(r.feasible);
  // Cross pairs are excluded by the constraint; best same-side pair is
  // {R0, R1} with min cpu 0.5.
  EXPECT_DOUBLE_EQ(r.objective, 0.5);
}

TEST(BruteForce, GuardsAgainstBlowup) {
  auto g = topo::star(40);
  remos::NetworkSnapshot snap(g);
  SelectionOptions opt;
  opt.num_nodes = 10;
  EXPECT_THROW(brute_force_select(snap, opt, Criterion::MaxCompute, 1000),
               std::invalid_argument);
}

TEST(BruteForce, InfeasibleWhenPoolSmall) {
  auto g = topo::star(2);
  remos::NetworkSnapshot snap(g);
  SelectionOptions opt;
  opt.num_nodes = 5;
  EXPECT_FALSE(brute_force_select(snap, opt, Criterion::MaxCompute).feasible);
}

TEST(FixedRequirements, BandwidthFloorThenMaximiseCpu) {
  // §3.3: "satisfy a fixed bandwidth requirement (e.g. a minimum of 50Mbps
  // between any selected nodes) and maximize processor availability under
  // that constraint."
  auto g = topo::dumbbell(3, 3);
  remos::NetworkSnapshot snap(g);
  snap.set_bw(0, 30e6);
  snap.set_loadavg(g.find_node("R0").value(), 0.2);
  snap.set_loadavg(g.find_node("L0").value(), 0.1);
  SelectionOptions opt;
  opt.num_nodes = 2;
  opt.min_bw_bps = 50e6;
  auto algo = select_max_compute(snap, opt);
  auto exact = brute_force_select(snap, opt, Criterion::MaxCompute);
  ASSERT_TRUE(algo.feasible);
  EXPECT_DOUBLE_EQ(algo.objective, exact.objective);
  auto ev = evaluate_set(snap, algo.nodes, opt);
  EXPECT_GE(ev.min_pair_bw, 50e6);
}

TEST(FixedRequirements, CpuFloorThenMaximiseBandwidth) {
  // The dual: require 50% cpu, maximise bandwidth among eligible nodes.
  auto g = topo::star(6);
  remos::NetworkSnapshot snap(g);
  snap.set_loadavg(1, 3.0);  // cpu 0.25: ineligible
  snap.set_loadavg(2, 3.0);
  snap.set_bw(2, 20e6);  // h2's link congested
  SelectionOptions opt;
  opt.num_nodes = 2;
  opt.min_cpu_fraction = 0.5;
  auto r = select_max_bandwidth(snap, opt);
  ASSERT_TRUE(r.feasible);
  for (auto n : r.nodes) {
    EXPECT_GE(snap.cpu(n), 0.5);
    EXPECT_NE(n, 3);  // h2 (id 3) has the congested link
  }
  EXPECT_NEAR(r.objective, 100e6, 1.0);
}

}  // namespace
}  // namespace netsel::select
