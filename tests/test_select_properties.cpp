// Cross-cutting invariants of the selection procedures, checked over
// randomized snapshots: well-formedness of results, determinism,
// eligibility, scale invariance, and monotonicity properties that the
// paper's definitions imply.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "select/algorithms.hpp"
#include "select/objective.hpp"
#include "topo/generators.hpp"

namespace netsel::select {
namespace {

struct Instance {
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

Instance random_instance(std::uint64_t seed, int computes = 12,
                         int switches = 4) {
  util::Rng rng(seed);
  topo::RandomTreeOptions topt;
  topt.compute_nodes = computes;
  topt.network_nodes = switches;
  Instance inst;
  inst.graph =
      std::make_unique<topo::TopologyGraph>(topo::random_tree(rng, topt));
  inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
  for (auto n : inst.graph->compute_nodes())
    inst.snap->set_loadavg(n, rng.uniform(0.0, 3.0));
  for (std::size_t l = 0; l < inst.graph->link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    inst.snap->set_bw(id, rng.uniform(0.05, 1.0) * inst.snap->maxbw(id));
  }
  return inst;
}

class AllAlgorithms
    : public ::testing::TestWithParam<std::tuple<Criterion, std::uint64_t>> {};

TEST_P(AllAlgorithms, WellFormedResult) {
  auto [criterion, seed] = GetParam();
  auto inst = random_instance(seed);
  SelectionOptions opt;
  opt.num_nodes = 4;
  auto r = select_nodes(criterion, *inst.snap, opt);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.nodes.size(), 4u);
  std::set<topo::NodeId> uniq(r.nodes.begin(), r.nodes.end());
  EXPECT_EQ(uniq.size(), 4u) << "no duplicates";
  EXPECT_TRUE(std::is_sorted(r.nodes.begin(), r.nodes.end()));
  for (auto n : r.nodes) EXPECT_TRUE(inst.graph->is_compute(n));
  auto ev = evaluate_set(*inst.snap, r.nodes, opt);
  EXPECT_TRUE(ev.connected);
}

TEST_P(AllAlgorithms, Deterministic) {
  auto [criterion, seed] = GetParam();
  auto inst = random_instance(seed);
  SelectionOptions opt;
  opt.num_nodes = 5;
  auto a = select_nodes(criterion, *inst.snap, opt);
  auto b = select_nodes(criterion, *inst.snap, opt);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST_P(AllAlgorithms, EligibilityMaskIsHard) {
  auto [criterion, seed] = GetParam();
  auto inst = random_instance(seed);
  SelectionOptions opt;
  opt.num_nodes = 3;
  // Forbid half of the compute nodes.
  auto computes = inst.graph->compute_nodes();
  opt.eligible.assign(inst.graph->node_count(), 0);
  for (std::size_t i = 0; i < computes.size(); i += 2)
    opt.eligible[static_cast<std::size_t>(computes[i])] = 1;
  auto r = select_nodes(criterion, *inst.snap, opt);
  if (!r.feasible) return;  // mask may leave no connected trio: acceptable
  for (auto n : r.nodes)
    EXPECT_TRUE(opt.eligible[static_cast<std::size_t>(n)]);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, AllAlgorithms,
    ::testing::Combine(::testing::Values(Criterion::MaxCompute,
                                         Criterion::MaxBandwidth,
                                         Criterion::Balanced),
                       ::testing::Values(201u, 202u, 203u, 204u, 205u)));

TEST(Invariance, BalancedScaleInvariantInBandwidth) {
  // bwfactor-based fractions are ratios, so multiplying every capacity AND
  // availability by a constant must not change the balanced choice.
  for (std::uint64_t seed : {301u, 302u, 303u}) {
    topo::TopologyGraph g1, g2;
    // Build two copies, the second with 7x capacities.
    auto build = [&](double scale) {
      util::Rng local(seed);
      topo::TopologyGraph g;
      auto sw0 = g.add_network("sw0");
      auto sw1 = g.add_network("sw1");
      g.add_link(sw0, sw1, 50e6 * scale);
      for (int i = 0; i < 8; ++i) {
        auto h = g.add_compute("h" + std::to_string(i));
        g.add_link(i % 2 ? sw0 : sw1, h, local.uniform(20e6, 100e6) * scale);
      }
      return g;
    };
    g1 = build(1.0);
    g2 = build(7.0);
    remos::NetworkSnapshot s1(g1), s2(g2);
    util::Rng avail(seed + 99);
    for (std::size_t l = 0; l < g1.link_count(); ++l) {
      double f = avail.uniform(0.1, 1.0);
      auto id = static_cast<topo::LinkId>(l);
      s1.set_bw(id, f * s1.maxbw(id));
      s2.set_bw(id, f * s2.maxbw(id));
    }
    util::Rng loads(seed + 7);
    for (auto n : g1.compute_nodes()) {
      double la = loads.uniform(0.0, 2.0);
      s1.set_loadavg(n, la);
      s2.set_loadavg(n, la);
    }
    SelectionOptions opt;
    opt.num_nodes = 3;
    EXPECT_EQ(select_balanced(s1, opt).nodes, select_balanced(s2, opt).nodes)
        << "seed " << seed;
  }
}

TEST(Monotonicity, LoadingANonSelectedNodeCannotChangeMaxCompute) {
  for (std::uint64_t seed : {401u, 402u, 403u, 404u}) {
    auto inst = random_instance(seed);
    SelectionOptions opt;
    opt.num_nodes = 4;
    auto before = select_max_compute(*inst.snap, opt);
    ASSERT_TRUE(before.feasible);
    // Load every node NOT selected even harder.
    for (auto n : inst.graph->compute_nodes()) {
      if (std::find(before.nodes.begin(), before.nodes.end(), n) ==
          before.nodes.end()) {
        inst.snap->set_cpu(n, inst.snap->cpu(n) * 0.5);
      }
    }
    auto after = select_max_compute(*inst.snap, opt);
    EXPECT_EQ(after.nodes, before.nodes) << "seed " << seed;
  }
}

TEST(Monotonicity, RelievingSelectedNodesKeepsThemSelected) {
  for (std::uint64_t seed : {501u, 502u, 503u}) {
    auto inst = random_instance(seed);
    SelectionOptions opt;
    opt.num_nodes = 4;
    auto before = select_max_compute(*inst.snap, opt);
    ASSERT_TRUE(before.feasible);
    for (auto n : before.nodes) inst.snap->set_cpu(n, 1.0);
    auto after = select_max_compute(*inst.snap, opt);
    EXPECT_EQ(after.nodes, before.nodes) << "seed " << seed;
  }
}

TEST(Objectives, AlgorithmsDominateRandomOnTheirOwnMetric) {
  // Each algorithm must beat (or tie) random selection by its own
  // objective, instance by instance.
  for (std::uint64_t seed : {601u, 602u, 603u, 604u, 605u}) {
    auto inst = random_instance(seed);
    SelectionOptions opt;
    opt.num_nodes = 4;
    util::Rng rng(seed * 13);
    auto rand = select_random(*inst.snap, opt, rng);
    ASSERT_TRUE(rand.feasible);
    auto rand_ev = evaluate_set(*inst.snap, rand.nodes, opt);

    auto cpu = select_max_compute(*inst.snap, opt);
    EXPECT_GE(cpu.min_cpu, rand_ev.min_cpu - 1e-12);

    auto bw = select_max_bandwidth(*inst.snap, opt);
    auto bw_ev = evaluate_set(*inst.snap, bw.nodes, opt);
    EXPECT_GE(bw_ev.min_pair_bw, rand_ev.min_pair_bw - 1e-9);
  }
}

TEST(Feasibility, ExactlyEnoughNodesAlwaysFeasible) {
  for (std::uint64_t seed : {701u, 702u}) {
    auto inst = random_instance(seed, 6, 3);
    SelectionOptions opt;
    opt.num_nodes = 6;  // every compute node required
    for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                        Criterion::Balanced}) {
      auto r = select_nodes(c, *inst.snap, opt);
      ASSERT_TRUE(r.feasible) << criterion_name(c);
      EXPECT_EQ(r.nodes, inst.graph->compute_nodes());
    }
  }
}

}  // namespace
}  // namespace netsel::select
