// Tests for dominated-candidate pruning (select/prune.hpp).
//
// The pruned fast paths must stay bit-identical to the retained naive
// references (select/reference.hpp) — the pruning claim is
// winner-preserving, not approximate — so the oracle sweep runs every
// synthetic-generator family at <= 64 nodes across seeds, m values, and
// option variants, comparing node sets, objectives, and iteration counts.
// Direct unit tests pin down the mask itself: what a leaf-switch group
// drops, and the m < 2 / disabled short-circuits.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "remos/snapshot.hpp"
#include "select/algorithms.hpp"
#include "select/prune.hpp"
#include "select/reference.hpp"
#include "topo/synthetic.hpp"

namespace netsel::select {
namespace {

struct Instance {
  std::string what;
  std::unique_ptr<topo::TopologyGraph> graph;
  std::unique_ptr<remos::NetworkSnapshot> snap;
};

/// Every generated topology family at <= 64 nodes, with seeded loads and
/// link availabilities on top (remos::apply_synthetic_load).
std::vector<Instance> instances(std::uint64_t seed) {
  std::vector<Instance> out;
  {
    auto ft = topo::fat_tree_for_hosts(24, 6, 2.0, seed);
    ft.cpu_jitter = 0.3;  // heterogeneous hosts exercise the cpu ranking
    Instance inst;
    inst.what = "fat_tree seed " + std::to_string(seed);
    inst.graph = std::make_unique<topo::TopologyGraph>(topo::fat_tree(ft));
    out.push_back(std::move(inst));
  }
  {
    topo::CampusWanOptions cw;
    cw.campuses = 2;
    cw.buildings_per_campus = 2;
    cw.hosts_per_building = 3;
    cw.seed = seed;
    Instance inst;
    inst.what = "campus_wan seed " + std::to_string(seed);
    inst.graph = std::make_unique<topo::TopologyGraph>(topo::campus_wan(cw));
    out.push_back(std::move(inst));
  }
  {
    topo::RandomCoreEdgeOptions ce;
    ce.core_switches = 4;
    ce.edge_switches = 8;
    ce.hosts = 32;
    ce.seed = seed;
    Instance inst;
    inst.what = "random_core_edge seed " + std::to_string(seed);
    inst.graph =
        std::make_unique<topo::TopologyGraph>(topo::random_core_edge(ce));
    out.push_back(std::move(inst));
  }
  for (auto& inst : out) {
    EXPECT_LE(inst.graph->node_count(), 64u) << inst.what;
    inst.snap = std::make_unique<remos::NetworkSnapshot>(*inst.graph);
    remos::apply_synthetic_load(*inst.snap, seed * 31 + 7);
  }
  return out;
}

/// Option variants covering the knobs that feed the domination keys
/// (fractions, cpu ranking, eligibility).
std::vector<std::pair<std::string, SelectionOptions>> option_variants() {
  std::vector<std::pair<std::string, SelectionOptions>> out;
  out.emplace_back("base", SelectionOptions{});
  SelectionOptions opt;
  opt.min_bw_bps = 40 * topo::kMbps;
  out.emplace_back("min_bw", opt);
  opt = {};
  opt.reference_bw = topo::k100Mbps;
  out.emplace_back("reference_bw", opt);
  opt = {};
  opt.cpu_priority = 2.0;
  opt.bw_priority = 0.5;
  out.emplace_back("priorities", opt);
  opt = {};
  opt.min_cpu_fraction = 0.6;
  out.emplace_back("min_cpu", opt);
  opt = {};
  opt.exhaustive_balanced = true;
  out.emplace_back("exhaustive", opt);
  // The <= 64-node instances sit under the default candidate-count
  // short-circuit; this variant forces the prune pass so the oracle still
  // compares *actual* pruning against the naive references.
  opt = {};
  opt.prune_min_candidates = 0;
  out.emplace_back("always_prune", opt);
  return out;
}

void expect_same_result(const SelectionResult& fast, const SelectionResult& ref,
                        const std::string& what) {
  ASSERT_EQ(fast.feasible, ref.feasible) << what;
  EXPECT_EQ(fast.nodes, ref.nodes) << what;
  EXPECT_EQ(fast.iterations, ref.iterations) << what;
  if (!fast.feasible) return;
  EXPECT_DOUBLE_EQ(fast.min_cpu, ref.min_cpu) << what;
  if (fast.nodes.size() >= 2) {
    EXPECT_DOUBLE_EQ(fast.min_bw_fraction, ref.min_bw_fraction) << what;
    EXPECT_DOUBLE_EQ(fast.objective, ref.objective) << what;
  }
}

SelectionResult reference_select(Criterion c,
                                 const remos::NetworkSnapshot& snap,
                                 const SelectionOptions& opt) {
  switch (c) {
    case Criterion::MaxCompute:
      return detail::reference_select_max_compute(snap, opt);
    case Criterion::MaxBandwidth:
      return detail::reference_select_max_bandwidth(snap, opt);
    case Criterion::Balanced:
      return detail::reference_select_balanced(snap, opt);
  }
  return {};
}

TEST(PruneOracle, PrunedPathsMatchNaiveReferencesOnAllFamilies) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (const auto& inst : instances(seed)) {
      for (const auto& [vname, base] : option_variants()) {
        for (int m : {2, 4, 8}) {
          for (Criterion c : {Criterion::MaxCompute, Criterion::MaxBandwidth,
                              Criterion::Balanced}) {
            SelectionOptions opt = base;
            opt.num_nodes = m;
            const std::string what = inst.what + " " + vname + " m=" +
                                     std::to_string(m) + " " +
                                     criterion_name(c);
            auto fast = select_nodes(c, *inst.snap, opt);
            expect_same_result(fast, reference_select(c, *inst.snap, opt),
                               "vs reference: " + what);
            // The unpruned fast path must agree field-for-field too.
            SelectionOptions unpruned = opt;
            unpruned.prune_dominated = false;
            expect_same_result(fast, select_nodes(c, *inst.snap, unpruned),
                               "vs unpruned: " + what);
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------- mask units

/// A star: one switch, six degree-1 hosts with strictly decreasing NIC
/// bandwidth, availability fraction, and cpu capacity — host i dominates
/// every host j > i in all three keys.
struct Star {
  topo::TopologyGraph g;
  std::vector<topo::NodeId> hosts;
  topo::NodeId sw;
};

Star make_star(bool heterogeneous) {
  Star s;
  s.sw = s.g.add_network("sw");
  for (int i = 0; i < 6; ++i) {
    double capacity = heterogeneous ? 2.0 - 0.1 * i : 1.0;
    auto h = s.g.add_compute("h" + std::to_string(i), capacity);
    double bw = heterogeneous ? (100.0 - i) * topo::kMbps : topo::k100Mbps;
    s.g.add_link(s.sw, h, bw);
    s.hosts.push_back(h);
  }
  s.g.validate();
  return s;
}

std::vector<char> eligible_mask(const remos::NetworkSnapshot& snap,
                                const SelectionOptions& opt) {
  std::vector<char> elig(snap.graph().node_count(), 0);
  for (std::size_t i = 0; i < snap.graph().node_count(); ++i)
    elig[i] = node_eligible(snap, static_cast<topo::NodeId>(i), opt) ? 1 : 0;
  return elig;
}

TEST(DominatedMask, DropsAllButTopMOfADominatedLeafGroup) {
  auto s = make_star(/*heterogeneous=*/true);
  remos::NetworkSnapshot snap(s.g);
  // Strictly decreasing availability fraction across the hosts.
  for (std::size_t l = 0; l < s.g.link_count(); ++l) {
    auto id = static_cast<topo::LinkId>(l);
    snap.set_bw(id, snap.maxbw(id) * (1.0 - 0.05 * static_cast<double>(l)));
  }
  SelectionOptions opt;
  opt.num_nodes = 2;
  opt.prune_min_candidates = 0;  // the star is far below the default cutoff
  auto elig = eligible_mask(snap, opt);
  auto cand = dominated_candidate_mask(snap, opt, elig);
  EXPECT_TRUE(cand[static_cast<std::size_t>(s.hosts[0])]);
  EXPECT_TRUE(cand[static_cast<std::size_t>(s.hosts[1])]);
  for (std::size_t i = 2; i < s.hosts.size(); ++i)
    EXPECT_FALSE(cand[static_cast<std::size_t>(s.hosts[i])])
        << "host " << i << " has >= 2 dominators";
  EXPECT_FALSE(cand[static_cast<std::size_t>(s.sw)]) << "switch stays out";

  // m = 1 and disabled pruning return the eligibility mask unchanged.
  opt.num_nodes = 1;
  EXPECT_EQ(dominated_candidate_mask(snap, opt, elig), elig);
  opt.num_nodes = 2;
  opt.prune_dominated = false;
  EXPECT_EQ(dominated_candidate_mask(snap, opt, elig), elig);

  // Under the default candidate-count threshold this small star
  // short-circuits: the mask comes back unchanged even though hosts are
  // dominated (the regression fix for pruned-slower-than-unpruned cold runs
  // at small sizes).
  opt.prune_dominated = true;
  opt.prune_min_candidates = 512;
  EXPECT_EQ(dominated_candidate_mask(snap, opt, elig), elig);
}

TEST(DominatedMask, TiedHostsAreNeverPruned) {
  // With identical bandwidth, fraction, and cpu, domination requires the
  // dominator's link to outlive the candidate's (larger link id) while
  // ranking earlier by cpu (smaller node id) — impossible, so ties survive.
  auto s = make_star(/*heterogeneous=*/false);
  remos::NetworkSnapshot snap(s.g);
  SelectionOptions opt;
  opt.num_nodes = 2;
  auto elig = eligible_mask(snap, opt);
  EXPECT_EQ(dominated_candidate_mask(snap, opt, elig), elig);
}

}  // namespace
}  // namespace netsel::select
