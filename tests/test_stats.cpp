#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace netsel::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_halfwidth(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownSample) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MatchesTwoPassComputation) {
  Rng rng(11);
  std::vector<double> xs;
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(-5, 17);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  Rng rng(12);
  OnlineStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  OnlineStats a_copy = a;
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(TQuantile, KnownValues) {
  EXPECT_NEAR(t_quantile(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(t_quantile(0.99, 5), 4.032, 1e-3);
  EXPECT_NEAR(t_quantile(0.90, 30), 1.697, 1e-3);
}

TEST(TQuantile, InterpolatesBetweenRowsMonotonically) {
  // dof 13 lies between table rows 12 and 15.
  double t12 = t_quantile(0.95, 12);
  double t13 = t_quantile(0.95, 13);
  double t15 = t_quantile(0.95, 15);
  EXPECT_LT(t15, t13);
  EXPECT_LT(t13, t12);
}

TEST(TQuantile, LargeDofApproachesNormal) {
  EXPECT_NEAR(t_quantile(0.95, 100000), 1.960, 5e-3);
}

TEST(TQuantile, RejectsZeroDof) {
  EXPECT_THROW(t_quantile(0.95, 0), std::invalid_argument);
}

TEST(CiHalfwidth, ShrinksWithSamples) {
  Rng rng(13);
  OnlineStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(Percentile, KnownValues) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
  EXPECT_NEAR(percentile(xs, 90), 9.1, 1e-12);
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
}

TEST(Percentile, Rejections) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.99);   // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow
  h.add(25.0);   // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_NEAR(h.bin_fraction(0), 2.0 / 7.0, 1e-12);
}

TEST(HistogramTest, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramTest, Rejections) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace netsel::util
