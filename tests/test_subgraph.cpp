#include "topo/subgraph.hpp"

#include <gtest/gtest.h>

#include "remos/snapshot.hpp"
#include "topo/generators.hpp"

namespace netsel::topo {
namespace {

TEST(Subgraph, SpansRoutesOnly) {
  auto g = testbed();
  auto m1 = g.find_node("m-1").value();
  auto m2 = g.find_node("m-2").value();
  auto m13 = g.find_node("m-13").value();
  auto sub = extract_subgraph(g, {m1, m2, m13});
  // Relevant part: m-1, m-2, m-13, panama, gibraltar, suez.
  EXPECT_EQ(sub.graph.node_count(), 6u);
  EXPECT_EQ(sub.graph.link_count(), 5u);
  EXPECT_TRUE(sub.graph.find_node("gibraltar").has_value());
  EXPECT_FALSE(sub.graph.find_node("m-3").has_value());
  sub.graph.validate();
}

TEST(Subgraph, PreservesAttributes) {
  auto g = testbed();
  auto m7 = g.find_node("m-7").value();
  auto m13 = g.find_node("m-13").value();
  auto sub = extract_subgraph(g, {m7, m13});
  auto sm7 = sub.graph.find_node("m-7");
  ASSERT_TRUE(sm7.has_value());
  EXPECT_TRUE(sub.graph.node(*sm7).has_tag("alpha"));
  // The ATM trunk survives with its capacity.
  bool found_atm = false;
  for (std::size_t l = 0; l < sub.graph.link_count(); ++l) {
    if (sub.graph.link(static_cast<LinkId>(l)).capacity_ab == k155Mbps)
      found_atm = true;
  }
  EXPECT_TRUE(found_atm);
}

TEST(Subgraph, MappingsAreConsistent) {
  auto g = testbed();
  auto m1 = g.find_node("m-1").value();
  auto m18 = g.find_node("m-18").value();
  auto sub = extract_subgraph(g, {m1, m18});
  for (std::size_t i = 0; i < sub.parent_node.size(); ++i) {
    auto sub_id = static_cast<NodeId>(i);
    NodeId parent_id = sub.parent_node[i];
    EXPECT_EQ(sub.graph.node(sub_id).name, g.node(parent_id).name);
    EXPECT_EQ(sub.to_sub(parent_id), sub_id);
  }
  EXPECT_EQ(sub.to_sub(g.find_node("m-9").value()), kInvalidNode);
  EXPECT_EQ(sub.to_sub(-5), kInvalidNode);
  for (std::size_t l = 0; l < sub.parent_link.size(); ++l) {
    auto sub_id = static_cast<LinkId>(l);
    EXPECT_DOUBLE_EQ(sub.graph.link(sub_id).capacity_ab,
                     g.link(sub.parent_link[l]).capacity_ab);
  }
}

TEST(Subgraph, SingleNode) {
  auto g = testbed();
  auto m1 = g.find_node("m-1").value();
  auto sub = extract_subgraph(g, {m1});
  EXPECT_EQ(sub.graph.node_count(), 1u);
  EXPECT_EQ(sub.graph.link_count(), 0u);
}

TEST(Subgraph, Rejections) {
  auto g = testbed();
  EXPECT_THROW(extract_subgraph(g, {}), std::invalid_argument);
  EXPECT_THROW(extract_subgraph(g, {-1}), std::invalid_argument);
  EXPECT_THROW(extract_subgraph(g, {999}), std::invalid_argument);
}

TEST(Subgraph, ProjectionCarriesAvailability) {
  auto g = testbed();
  auto m1 = g.find_node("m-1").value();
  auto m13 = g.find_node("m-13").value();
  remos::NetworkSnapshot parent(g);
  parent.set_loadavg(m1, 1.0);
  // Congest the ATM trunk asymmetrically.
  parent.set_bw_dir(1, true, 30e6);
  auto sub = extract_subgraph(g, {m1, m13});
  auto snap = remos::project_snapshot(parent, sub);
  auto sm1 = sub.graph.find_node("m-1").value();
  EXPECT_DOUBLE_EQ(snap.cpu(sm1), 0.5);
  bool found = false;
  for (std::size_t l = 0; l < sub.parent_link.size(); ++l) {
    if (sub.parent_link[l] == 1) {
      EXPECT_DOUBLE_EQ(snap.bw_dir(static_cast<LinkId>(l), true), 30e6);
      EXPECT_DOUBLE_EQ(snap.bw_dir(static_cast<LinkId>(l), false), k155Mbps);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "the ATM trunk must be in the m-1..m-13 subgraph";
}

}  // namespace
}  // namespace netsel::topo
