// Tests for the synthetic datacenter-scale topology generators
// (topo/synthetic.hpp): golden-file snapshots of tiny instances, structural
// invariants (degrees, bisection bandwidth, connectivity, heterogeneity
// ranges) across seeds, determinism from the seed, .topo round-tripping
// through format_topology/parse_topology, and option validation.
//
// The golden files live in tests/golden/ and are regenerated with the CLI:
//   netsel_cli --generate fat-tree:hosts=6,ports=4,oversub=2,seed=3 --emit-topo
//   netsel_cli --generate campus-wan:campuses=2,buildings=1,hosts=2,seed=9 \
//     --emit-topo

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "topo/connectivity.hpp"
#include "topo/parse.hpp"
#include "topo/synthetic.hpp"

namespace netsel::topo {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(NETSEL_SOURCE_DIR) + "/tests/golden/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------- goldens

TEST(SyntheticGolden, FatTreeTinySnapshot) {
  auto g = fat_tree(fat_tree_for_hosts(6, 4, 2.0, 3));
  EXPECT_EQ(format_topology(g), read_golden("fat_tree_tiny.topo"));
}

TEST(SyntheticGolden, CampusWanTinySnapshot) {
  CampusWanOptions opt;
  opt.campuses = 2;
  opt.buildings_per_campus = 1;
  opt.hosts_per_building = 2;
  opt.seed = 9;
  EXPECT_EQ(format_topology(campus_wan(opt)),
            read_golden("campus_wan_tiny.topo"));
}

// ----------------------------------------------------------- sizing rules

TEST(FatTreeForHosts, PortSplitRespectsOversubscription) {
  struct Case {
    int hosts, ports;
    double oversub;
  };
  for (const Case& c : {Case{6, 4, 2.0}, Case{64, 24, 1.0}, Case{512, 48, 3.0},
                        Case{10000, 48, 3.0}, Case{7, 2, 10.0}}) {
    auto opt = fat_tree_for_hosts(c.hosts, c.ports, c.oversub);
    // Every edge-switch port is either a downlink or an uplink.
    EXPECT_EQ(opt.hosts_per_edge + opt.core_switches, c.ports)
        << c.hosts << "/" << c.ports;
    EXPECT_GE(opt.hosts_per_edge, 1);
    EXPECT_GE(opt.core_switches, 1);
    // Enough edge switches for the requested hosts, without a whole idle one.
    EXPECT_GE(opt.edge_switches * opt.hosts_per_edge, c.hosts);
    EXPECT_LT((opt.edge_switches - 1) * opt.hosts_per_edge, c.hosts);
  }
  // The documented example: 48 ports at 3:1 -> 36 down / 12 up.
  auto opt = fat_tree_for_hosts(10000, 48, 3.0);
  EXPECT_EQ(opt.hosts_per_edge, 36);
  EXPECT_EQ(opt.core_switches, 12);
  EXPECT_EQ(opt.edge_switches, 278);
}

// ------------------------------------------------------------- invariants

TEST(FatTree, StructuralInvariantsAcrossSeeds) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    FatTreeOptions opt;
    opt.edge_switches = 6;
    opt.hosts_per_edge = 4;
    opt.core_switches = 3;
    opt.cpu_jitter = 0.2;
    opt.memory_bytes = 1e9;
    opt.seed = seed;
    auto g = fat_tree(opt);
    ASSERT_EQ(g.node_count(),
              static_cast<std::size_t>(3 + 6 * (1 + 4)));
    ASSERT_EQ(g.link_count(), static_cast<std::size_t>(6 * (3 + 4)));
    EXPECT_EQ(connected_components(g).count, 1);
    EXPECT_FALSE(g.is_acyclic()) << "edge switches mesh to >= 2 cores";
    for (std::size_t i = 0; i < g.node_count(); ++i) {
      const auto n = static_cast<NodeId>(i);
      const Node& node = g.node(n);
      if (node.name.rfind("core", 0) == 0) {
        EXPECT_EQ(g.degree(n), static_cast<std::size_t>(opt.edge_switches));
      } else if (node.name.rfind("edge", 0) == 0) {
        // Uplinks to every core plus one drop per host; the switch's cut
        // towards the core carries core_switches * uplink_bw.
        EXPECT_EQ(g.degree(n), static_cast<std::size_t>(opt.core_switches +
                                                        opt.hosts_per_edge));
        double uplink_capacity = 0.0;
        for (LinkId l : g.links_of(n))
          if (!g.is_compute(g.other_end(l, n)))
            uplink_capacity += g.link(l).capacity_min();
        EXPECT_DOUBLE_EQ(uplink_capacity,
                         opt.core_switches * opt.uplink_bw);
      } else {
        EXPECT_TRUE(g.is_compute(n));
        EXPECT_EQ(g.degree(n), 1u);
        EXPECT_GE(node.cpu_capacity, 1.0 - opt.cpu_jitter);
        EXPECT_LE(node.cpu_capacity, 1.0 + opt.cpu_jitter);
        EXPECT_DOUBLE_EQ(node.memory_bytes, opt.memory_bytes);
      }
    }
  }
}

TEST(FatTree, SingleCoreIsAcyclic) {
  FatTreeOptions opt;
  opt.core_switches = 1;
  EXPECT_TRUE(fat_tree(opt).is_acyclic());
}

TEST(CampusWan, StructuralInvariantsAcrossSeeds) {
  for (std::uint64_t seed : {2u, 4u, 8u}) {
    CampusWanOptions opt;
    opt.campuses = 3;
    opt.buildings_per_campus = 2;
    opt.hosts_per_building = 3;
    opt.seed = seed;
    auto g = campus_wan(opt);
    const int c = opt.campuses, b = opt.buildings_per_campus,
              h = opt.hosts_per_building;
    ASSERT_EQ(g.node_count(), static_cast<std::size_t>(1 + c + c * b +
                                                       c * b * h));
    EXPECT_TRUE(g.is_acyclic()) << "a tree of stars";
    EXPECT_EQ(connected_components(g).count, 1);
    EXPECT_EQ(g.compute_node_count(), static_cast<std::size_t>(c * b * h));
    for (auto n : g.compute_nodes()) {
      const Node& node = g.node(n);
      EXPECT_EQ(g.degree(n), 1u);
      EXPECT_GE(node.cpu_capacity, opt.cpu_capacity_min);
      EXPECT_LE(node.cpu_capacity, opt.cpu_capacity_max);
      EXPECT_TRUE(node.memory_bytes == 512e6 || node.memory_bytes == 1e9 ||
                  node.memory_bytes == 2e9)
          << node.memory_bytes;
      // c<k>-b<j>-h<i> carries the campus tag used by placement constraints.
      ASSERT_EQ(node.tags.size(), 1u);
      EXPECT_EQ(node.tags[0], "campus" + node.name.substr(1, 1));
    }
    // WAN trunk latencies are seeded draws from the configured range.
    auto core = g.find_node("wan-core");
    ASSERT_TRUE(core.has_value());
    for (LinkId l : g.links_of(*core)) {
      EXPECT_GE(g.link(l).latency, opt.wan_latency_min);
      EXPECT_LE(g.link(l).latency, opt.wan_latency_max);
      EXPECT_DOUBLE_EQ(g.link(l).capacity_min(), opt.wan_bw);
    }
  }
}

TEST(RandomCoreEdge, StructuralInvariantsAcrossSeeds) {
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    RandomCoreEdgeOptions opt;
    opt.core_switches = 5;
    opt.edge_switches = 8;
    opt.hosts = 40;
    opt.seed = seed;
    auto g = random_core_edge(opt);
    ASSERT_EQ(g.node_count(), static_cast<std::size_t>(5 + 8 + 40));
    EXPECT_EQ(connected_components(g).count, 1);
    EXPECT_EQ(g.compute_node_count(), 40u);
    for (std::size_t i = 0; i < g.node_count(); ++i) {
      const auto n = static_cast<NodeId>(i);
      const Node& node = g.node(n);
      if (g.is_compute(n)) {
        EXPECT_EQ(g.degree(n), 1u);
        const LinkId l = g.links_of(n).front();
        EXPECT_GE(g.link(l).capacity_min(), opt.host_bw_min);
        EXPECT_LE(g.link(l).capacity_min(), opt.host_bw_max);
      } else if (node.name.rfind("edge", 0) == 0) {
        // Multi-homed to `uplinks_per_edge` *distinct* core switches.
        std::set<NodeId> uplinks;
        for (LinkId l : g.links_of(n)) {
          NodeId peer = g.other_end(l, n);
          if (!g.is_compute(peer) && g.node(peer).name.rfind("core", 0) == 0)
            uplinks.insert(peer);
        }
        EXPECT_EQ(uplinks.size(),
                  static_cast<std::size_t>(opt.uplinks_per_edge));
      }
    }
  }
}

// ------------------------------------------------------------ determinism

TEST(Synthetic, DeterministicFromSeedAndSensitiveToIt) {
  FatTreeOptions ft;
  ft.cpu_jitter = 0.3;
  ft.seed = 21;
  EXPECT_EQ(format_topology(fat_tree(ft)), format_topology(fat_tree(ft)));
  auto ft2 = ft;
  ft2.seed = 22;
  EXPECT_NE(format_topology(fat_tree(ft)), format_topology(fat_tree(ft2)));

  CampusWanOptions cw;
  cw.seed = 21;
  EXPECT_EQ(format_topology(campus_wan(cw)), format_topology(campus_wan(cw)));
  auto cw2 = cw;
  cw2.seed = 22;
  EXPECT_NE(format_topology(campus_wan(cw)), format_topology(campus_wan(cw2)));

  RandomCoreEdgeOptions ce;
  ce.seed = 21;
  EXPECT_EQ(format_topology(random_core_edge(ce)),
            format_topology(random_core_edge(ce)));
  auto ce2 = ce;
  ce2.seed = 22;
  EXPECT_NE(format_topology(random_core_edge(ce)),
            format_topology(random_core_edge(ce2)));
}

// ------------------------------------------------------------- round-trip

void expect_roundtrips(const TopologyGraph& g, const std::string& what) {
  const std::string text = format_topology(g);
  TopologyGraph parsed;
  ASSERT_NO_THROW(parsed = parse_topology(text)) << what;
  ASSERT_EQ(parsed.node_count(), g.node_count()) << what;
  ASSERT_EQ(parsed.link_count(), g.link_count()) << what;
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const auto n = static_cast<NodeId>(i);
    EXPECT_EQ(parsed.node(n).name, g.node(n).name) << what;
    EXPECT_EQ(parsed.node(n).kind, g.node(n).kind) << what;
    EXPECT_EQ(parsed.node(n).tags, g.node(n).tags) << what;
  }
  // The serialiser prints 6 significant digits, which is a fixed point:
  // reformatting the parsed graph reproduces the text exactly.
  EXPECT_EQ(format_topology(parsed), text) << what;
}

TEST(Synthetic, TopoFormatRoundTrips) {
  FatTreeOptions ft;
  ft.cpu_jitter = 0.25;
  ft.memory_bytes = 2e9;
  ft.seed = 5;
  expect_roundtrips(fat_tree(ft), "fat_tree");
  CampusWanOptions cw;
  cw.seed = 5;
  expect_roundtrips(campus_wan(cw), "campus_wan");
  RandomCoreEdgeOptions ce;
  ce.seed = 5;
  expect_roundtrips(random_core_edge(ce), "random_core_edge");
}

// ------------------------------------------------------------- validation

TEST(Synthetic, RejectsNonsenseOptions) {
  FatTreeOptions ft;
  ft.edge_switches = 0;
  EXPECT_THROW(fat_tree(ft), std::invalid_argument);
  ft = {};
  ft.cpu_jitter = 1.0;
  EXPECT_THROW(fat_tree(ft), std::invalid_argument);
  EXPECT_THROW(fat_tree_for_hosts(0, 48, 3.0), std::invalid_argument);
  EXPECT_THROW(fat_tree_for_hosts(64, 1, 3.0), std::invalid_argument);
  EXPECT_THROW(fat_tree_for_hosts(64, 48, 0.0), std::invalid_argument);
  CampusWanOptions cw;
  cw.wan_latency_max = cw.wan_latency_min / 2;
  EXPECT_THROW(campus_wan(cw), std::invalid_argument);
  cw = {};
  cw.cpu_capacity_min = 0.0;
  EXPECT_THROW(campus_wan(cw), std::invalid_argument);
  RandomCoreEdgeOptions ce;
  ce.uplinks_per_edge = 0;
  EXPECT_THROW(random_core_edge(ce), std::invalid_argument);
  ce = {};
  ce.host_bw_max = ce.host_bw_min / 2;
  EXPECT_THROW(random_core_edge(ce), std::invalid_argument);
}

}  // namespace
}  // namespace netsel::topo
