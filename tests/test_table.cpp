#include "util/table.hpp"

#include <gtest/gtest.h>

namespace netsel::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.header({"App", "Time"});
  t.row({"FFT", "48.0"});
  t.row({"Airshed", "150.0"});
  std::string out = t.render();
  EXPECT_NE(out.find("App"), std::string::npos);
  EXPECT_NE(out.find("FFT"), std::string::npos);
  EXPECT_NE(out.find("150.0"), std::string::npos);
  // Header separator rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ColumnsPaddedToWidestCell) {
  TextTable t;
  t.header({"A", "B"});
  t.row({"looooong", "x"});
  std::string out = t.render();
  // Every line should have equal length (fixed-width columns).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable t;
  t.header({"A"});
  t.row({"1"});
  t.rule();
  t.row({"2"});
  std::string out = t.render();
  // Two rules: one under the header, one inserted.
  std::size_t first = out.find("|-");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find("|-", first + 1), std::string::npos);
}

TEST(TextTable, MissingCellsRenderEmpty) {
  TextTable t;
  t.header({"A", "B", "C"});
  t.row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, NoHeaderStillRenders) {
  TextTable t;
  t.row({"a", "b"});
  std::string out = t.render();
  EXPECT_NE(out.find("a"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-2.5, 1), "-2.5");
}

TEST(FmtPctChange, MatchesPaperStyle) {
  // 112.6 -> 82.6 is the paper's "(-26.6%)" style cell.
  EXPECT_EQ(fmt_pct_change(112.6, 82.6), "(-26.6%)");
  EXPECT_EQ(fmt_pct_change(100.0, 150.0), "(+50.0%)");
  EXPECT_EQ(fmt_pct_change(0.0, 5.0), "(+0.0%)");
}

TEST(FmtBytes, Units) {
  EXPECT_EQ(fmt_bytes(500), "500.0B");
  EXPECT_EQ(fmt_bytes(1.25e6), "1.25MB");
  EXPECT_EQ(fmt_bytes(16e9), "16.0GB");
}

TEST(FmtMbps, Converts) {
  EXPECT_EQ(fmt_mbps(100e6), "100.0 Mbps");
  EXPECT_EQ(fmt_mbps(155e6), "155.0 Mbps");
}

}  // namespace
}  // namespace netsel::util
