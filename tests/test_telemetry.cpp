// Tests of the time-dimension telemetry (DESIGN.md §13): the delta-encoded
// TimeSeriesRecorder, per-job causal traces, and the always-on flight
// recorder — plus their three determinism contracts:
//   * recorders attached never change the scheduler's state digest, and the
//     recorder-off digest equals the recorder-on digest;
//   * job-trace and time-series digests are identical at 1, 2 and 4
//     placement lanes (serial and pooled);
//   * the flight ring under overflow keeps exactly the newest N events.

#include "obs/flight.hpp"
#include "obs/jobtrace.hpp"
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "remos/snapshot.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "topo/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace netsel {
namespace {

// --- TimeSeriesRecorder ----------------------------------------------------

TEST(TimeSeries, SamplesOnCadenceBoundaries) {
  obs::TimeSeriesRecorder ts(0.5);
  std::uint64_t counter = 0;
  double gauge = 0.0;
  ts.add_counter("c", [&] { return counter; });
  ts.add_gauge("g", [&] { return gauge; });

  // Boundaries 0, 0.5, 1.0 are <= 1.2; the carried-forward state is read at
  // each boundary's emit time.
  counter = 3;
  gauge = 1.5;
  ts.sample_until(1.2);
  EXPECT_EQ(ts.samples(), 3u);
  EXPECT_DOUBLE_EQ(ts.t_first(), 0.0);
  EXPECT_DOUBLE_EQ(ts.t_last(), 1.0);

  // inclusive=false leaves a boundary exactly at sim_t for the next call.
  counter = 5;
  ts.sample_until(1.5, /*inclusive=*/false);
  EXPECT_EQ(ts.samples(), 3u);
  counter = 7;
  ts.sample_until(1.5, /*inclusive=*/true);
  EXPECT_EQ(ts.samples(), 4u);

  const std::vector<double> c = ts.values("c");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_DOUBLE_EQ(c[3], 7.0);  // boundary at the instant sees post-event
  const std::vector<double> g = ts.values("g");
  ASSERT_EQ(g.size(), 4u);
  EXPECT_DOUBLE_EQ(g[3], 1.5);
}

TEST(TimeSeries, DeltaDecodeRoundTripsAndRingBounds) {
  obs::TimeSeriesRecorder ts(1.0, /*capacity=*/8);
  std::uint64_t v = 0;
  ts.add_counter("v", [&] { return v; });
  std::vector<double> expected;
  for (int i = 0; i < 20; ++i) {
    v = static_cast<std::uint64_t>(i * i);  // non-uniform deltas
    ts.sample_until(static_cast<double>(i));
    expected.push_back(static_cast<double>(v));
  }
  // Ring bound: the newest 8 rows survive; first/last stay exact.
  EXPECT_EQ(ts.samples(), 8u);
  EXPECT_EQ(ts.total_samples(), 20u);
  EXPECT_EQ(ts.dropped(), 12u);
  EXPECT_DOUBLE_EQ(ts.t_first(), 12.0);
  EXPECT_DOUBLE_EQ(ts.t_last(), 19.0);
  const std::vector<double> got = ts.values("v");
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i], expected[12 + i]) << "row " << i;
}

TEST(TimeSeries, JsonExportIsConsistent) {
  obs::TimeSeriesRecorder ts(2.0);
  std::uint64_t v = 0;
  ts.add_counter("x.count", [&] { return v; });
  v = 10;
  ts.sample_until(6.0);
  std::ostringstream os;
  ts.write_json(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\": \"netsel-timeseries-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"samples\": 4"), std::string::npos);
  EXPECT_NE(doc.find("\"x.count\""), std::string::npos);
}

// --- JobTraceRecorder ------------------------------------------------------

TEST(JobTrace, SpanTreeStructure) {
  obs::JobTraceRecorder jt;
  const std::uint32_t root =
      jt.begin(7, obs::JobSpan::kNoParent, "job", 1.0);
  const std::uint32_t child = jt.begin(7, root, "queue.wait", 1.0);
  jt.end(7, child, 3.0);
  jt.span(7, root, "commit", 3.0, 3.0);
  jt.end(7, root, 5.0);

  ASSERT_TRUE(jt.has_trace(7));
  const std::vector<obs::JobSpan>& spans = jt.trace(7);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, obs::JobSpan::kNoParent);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[2].parent, root);
  EXPECT_DOUBLE_EQ(spans[0].sim_begin, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_end, 5.0);
  EXPECT_DOUBLE_EQ(spans[1].sim_end, 3.0);
}

TEST(JobTrace, DigestExcludesArgs) {
  obs::JobTraceRecorder a, b;
  const std::uint32_t ra = a.begin(1, obs::JobSpan::kNoParent, "job", 0.0);
  const std::uint32_t rb = b.begin(1, obs::JobSpan::kNoParent, "job", 0.0);
  a.annotate(1, ra, "lane", "0");
  b.annotate(1, rb, "lane", "3");  // lane attribution differs, digest must not
  a.end(1, ra, 2.0);
  b.end(1, rb, 2.0);
  EXPECT_EQ(a.digest(), b.digest());

  // ...but structure and sim-time bounds do change the digest.
  obs::JobTraceRecorder c;
  const std::uint32_t rc = c.begin(1, obs::JobSpan::kNoParent, "job", 0.0);
  c.end(1, rc, 2.5);
  EXPECT_NE(a.digest(), c.digest());
}

// --- FlightRecorder --------------------------------------------------------

TEST(FlightRecorder, OverflowKeepsNewest) {
  obs::FlightRecorder fr(8);
  EXPECT_EQ(fr.capacity(), 8u);
  for (std::uint64_t i = 1; i <= 20; ++i)
    fr.record(obs::FlightKind::Custom, static_cast<double>(i), i);
  EXPECT_EQ(fr.recorded(), 20u);
  const std::vector<obs::FlightEvent> tail = fr.tail();
  ASSERT_EQ(tail.size(), 8u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, 13 + i) << "tail index " << i;  // newest 8: 13..20
    EXPECT_EQ(tail[i].a, 13 + i);
  }
  // tail(n) narrows further, still oldest-first.
  const std::vector<obs::FlightEvent> last3 = fr.tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3.front().seq, 18u);
  EXPECT_EQ(last3.back().seq, 20u);
}

TEST(FlightRecorder, DetailTruncatesAndDumps) {
  obs::FlightRecorder fr(4);
  fr.record(obs::FlightKind::Admit, 1.5, 42, 4,
            "a-very-long-tenant-name-that-will-not-fit-in-the-slot");
  const std::vector<obs::FlightEvent> tail = fr.tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].detail[sizeof(tail[0].detail) - 1], '\0');
  std::ostringstream os;
  fr.dump(os);
  EXPECT_NE(os.str().find("admit"), std::string::npos);
  EXPECT_NE(os.str().find("a=42"), std::string::npos);
}

// --- Scheduler integration -------------------------------------------------

struct SchedRun {
  std::uint64_t state_digest = 0;
  std::uint64_t trace_digest = 0;
  std::uint64_t ts_digest = 0;
  std::size_t traces = 0;
  std::size_t spans = 0;
  std::size_t samples = 0;
};

SchedRun run_scenario(int lanes, util::ThreadPool* pool, bool telemetry) {
  auto g = topo::fat_tree(topo::fat_tree_for_hosts(64, 8, 2.0, 99));
  obs::TimeSeriesRecorder ts(1.0);
  obs::JobTraceRecorder jt;
  sched::SchedulerConfig cfg;
  cfg.placement_lanes = lanes;
  cfg.backfill_window = 4;
  cfg.schedule_interval = 1.0;
  cfg.max_queue_depth = 16;
  cfg.queue_timeout = 400.0;
  cfg.rebalance_on_release = true;
  cfg.rebalance_budget = 1;
  cfg.pool = pool;
  if (telemetry) {
    cfg.timeseries = &ts;
    cfg.job_trace = &jt;
  }
  sched::SchedulerService sched(g, cfg);
  remos::apply_synthetic_load(sched.snapshot(), 99 + 7);
  sched::WorkloadConfig w;
  w.arrival_rate = 2.0;
  w.seed = 99;
  sched::JobStream stream(w);
  stream.feed(sched, 40);
  sched.drain();
  SchedRun out;
  out.state_digest = sched.state_digest();
  out.trace_digest = jt.digest();
  out.ts_digest = ts.digest();
  out.traces = jt.traces();
  out.spans = jt.spans();
  out.samples = ts.samples();
  return out;
}

TEST(SchedulerTelemetry, RecorderOnOffStateDigestIdentical) {
  const SchedRun off = run_scenario(2, nullptr, false);
  const SchedRun on = run_scenario(2, nullptr, true);
  EXPECT_EQ(off.state_digest, on.state_digest)
      << "attaching recorders changed the schedule";
  EXPECT_GT(on.traces, 0u);
  EXPECT_GT(on.spans, on.traces);  // every trace has at least root + child
  EXPECT_GT(on.samples, 1u);
}

TEST(SchedulerTelemetry, DigestsIdenticalAcrossLaneCounts) {
  const SchedRun one = run_scenario(1, nullptr, true);
  util::ThreadPool pool(2);
  for (int lanes : {2, 4}) {
    const SchedRun serial = run_scenario(lanes, nullptr, true);
    const SchedRun pooled = run_scenario(lanes, &pool, true);
    EXPECT_EQ(serial.state_digest, one.state_digest) << lanes << " lanes";
    EXPECT_EQ(serial.trace_digest, one.trace_digest) << lanes << " lanes";
    EXPECT_EQ(serial.ts_digest, one.ts_digest) << lanes << " lanes";
    EXPECT_EQ(pooled.state_digest, one.state_digest)
        << lanes << " lanes, pooled";
    EXPECT_EQ(pooled.trace_digest, one.trace_digest)
        << lanes << " lanes, pooled";
    EXPECT_EQ(pooled.ts_digest, one.ts_digest) << lanes << " lanes, pooled";
  }
}

TEST(SchedulerTelemetry, TraceTreesCompleteAndClosed) {
  auto g = topo::fat_tree(topo::fat_tree_for_hosts(64, 8, 2.0, 5));
  obs::JobTraceRecorder jt;
  sched::SchedulerConfig cfg;
  cfg.placement_lanes = 2;
  cfg.schedule_interval = 1.0;
  cfg.queue_timeout = 400.0;
  cfg.job_trace = &jt;
  sched::SchedulerService sched(g, cfg);
  remos::apply_synthetic_load(sched.snapshot(), 5 + 7);
  sched::WorkloadConfig w;
  w.seed = 5;
  sched::JobStream stream(w);
  stream.feed(sched, 25);
  sched.drain();

  // Every admitted job has a trace; every span is closed with
  // sim_end >= sim_begin inside the root's bounds, and parents precede
  // children.
  std::size_t checked = 0;
  for (const sched::JobRecord& rec : sched.jobs()) {
    ASSERT_TRUE(jt.has_trace(rec.id)) << "job " << rec.id;
    const std::vector<obs::JobSpan>& spans = jt.trace(rec.id);
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans[0].name, "job");
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const obs::JobSpan& s = spans[i];
      EXPECT_GE(s.sim_end, s.sim_begin) << "span " << s.name;
      if (i == 0) {
        EXPECT_EQ(s.parent, obs::JobSpan::kNoParent);
      } else {
        ASSERT_LT(s.parent, i) << "parent after child";
        EXPECT_GE(s.sim_begin, spans[0].sim_begin);
        EXPECT_LE(s.sim_end, spans[0].sim_end);
      }
      ++checked;
    }
    // Placed jobs went through the whole pipeline.
    if (rec.start_time >= 0.0) {
      auto has = [&](const char* name) {
        for (const obs::JobSpan& s : spans)
          if (s.name == name) return true;
        return false;
      };
      EXPECT_TRUE(has("queue.wait")) << "job " << rec.id;
      EXPECT_TRUE(has("place.attempt")) << "job " << rec.id;
      EXPECT_TRUE(has("commit")) << "job " << rec.id;
      EXPECT_TRUE(has("run")) << "job " << rec.id;
      EXPECT_TRUE(has("release")) << "job " << rec.id;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SchedulerTelemetry, FlightRingSeesSchedulerEvents) {
  obs::FlightRecorder fr(64);
  auto g = topo::fat_tree(topo::fat_tree_for_hosts(64, 8, 2.0, 11));
  sched::SchedulerConfig cfg;
  cfg.schedule_interval = 1.0;
  cfg.flight = &fr;
  sched::SchedulerService sched(g, cfg);
  remos::apply_synthetic_load(sched.snapshot(), 11 + 7);
  sched::WorkloadConfig w;
  w.seed = 11;
  sched::JobStream stream(w);
  stream.feed(sched, 10);
  sched.drain();
  EXPECT_GT(fr.recorded(), 0u);
  bool admit = false, place = false, complete = false;
  for (const obs::FlightEvent& ev : fr.tail()) {
    admit |= ev.kind == obs::FlightKind::Admit;
    place |= ev.kind == obs::FlightKind::Place;
    complete |= ev.kind == obs::FlightKind::Complete;
  }
  EXPECT_TRUE(admit);
  EXPECT_TRUE(place);
  EXPECT_TRUE(complete);
}

}  // namespace
}  // namespace netsel
