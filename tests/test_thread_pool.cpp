#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace netsel::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInlineInSubmissionOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<std::size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  parallel_for(pool, 8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.workers(), 1);
}

TEST(ThreadPool, NestedParallelForMakesProgress) {
  // Cells dispatching trials on the same pool: the outer waiters must help
  // run inner jobs or a 1-worker pool would deadlock.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  parallel_for(pool, 3, [&](std::size_t) {
    parallel_for(pool, 40, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 3 * 40);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      parallel_for(pool, 16, [&](std::size_t i) {
        if (i == 3 || i == 11)
          throw std::logic_error("index " + std::to_string(i));
      });
      FAIL() << "expected logic_error";
    } catch (const std::logic_error& e) {
      EXPECT_STREQ(e.what(), "index 3");
    }
  }
}

TEST(ThreadPool, RemainingBodiesStillRunAfterException) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(32);
  EXPECT_THROW(parallel_for(pool, hits.size(),
                            [&](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i % 7 == 0) throw std::runtime_error("x");
                            }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, AsyncReturnsFutureValue) {
  ThreadPool pool(2);
  auto f = pool.async([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
  auto g = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(g.get(), std::runtime_error);
}

TEST(ThreadPool, UnevenJobsAreStolen) {
  // One long job plus many short ones: with stealing, the short jobs finish
  // on other workers while the long one runs, so total wall clock stays
  // well under the serial sum.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  parallel_for(pool, 64, [&](std::size_t i) {
    if (i == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ManyRoundsStress) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    parallel_for(pool, 100,
                 [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 50L * (99L * 100L / 2));
}

}  // namespace
}  // namespace netsel::util
