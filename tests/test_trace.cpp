#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "topo/generators.hpp"

namespace netsel::sim {
namespace {

TEST(Trace, SamplesOnSchedule) {
  NetworkSim net(topo::star(3));
  TraceRecorder trace(net, TraceConfig{5.0, true, true});
  trace.start();
  net.sim().run_until(20.0);
  EXPECT_EQ(trace.samples(), 5u);  // t = 0, 5, 10, 15, 20
  EXPECT_DOUBLE_EQ(trace.time_of(0), 0.0);
  EXPECT_DOUBLE_EQ(trace.time_of(4), 20.0);
}

TEST(Trace, DoubleStartIsNoOp) {
  NetworkSim net(topo::star(3));
  TraceRecorder trace(net, TraceConfig{5.0, true, true});
  trace.start();
  net.sim().run_until(10.0);
  trace.start();  // must not re-sample or double the cadence
  net.sim().run_until(30.0);
  EXPECT_EQ(trace.samples(), 7u);  // t = 0, 5, ..., 30 and nothing else
  EXPECT_DOUBLE_EQ(trace.time_of(6), 30.0);
}

TEST(Trace, ColumnsMatchTopology) {
  NetworkSim net(topo::star(3));
  TraceRecorder trace(net);
  auto cols = trace.columns();
  // time + 3 hosts + 3 links x 2 directions.
  ASSERT_EQ(cols.size(), 1u + 3u + 6u);
  EXPECT_EQ(cols[0], "time");
  EXPECT_EQ(cols[1], "load:h0");
  EXPECT_NE(cols[4].find("bw:"), std::string::npos);
}

TEST(Trace, RecordsLoadAndBandwidth) {
  NetworkSim net(topo::star(2));
  auto h0 = net.topology().find_node("h0").value();
  auto h1 = net.topology().find_node("h1").value();
  net.host(h0).submit(1e9, kBackgroundOwner);
  net.network().start_flow(h0, h1, 1e12, kBackgroundOwner);
  TraceRecorder trace(net, TraceConfig{10.0, true, true});
  trace.start();
  net.sim().run_until(300.0);
  std::size_t last = trace.samples() - 1;
  EXPECT_NEAR(trace.value(last, 0), 1.0, 1e-2);   // h0 load -> 1
  EXPECT_NEAR(trace.value(last, 1), 0.0, 1e-9);   // h1 idle
  // Link columns: first link h0--sw? star adds (sw, h0) then (sw, h1).
  // h0 -> h1 uses link0 backward (h0->sw) and link1 forward (sw->h1).
  EXPECT_NEAR(trace.value(last, 2 + 1), 100e6, 1e3);  // link0 rev
  EXPECT_NEAR(trace.value(last, 2 + 2), 100e6, 1e3);  // link1 fwd
}

TEST(Trace, CsvShape) {
  NetworkSim net(topo::star(2));
  TraceRecorder trace(net, TraceConfig{1.0, true, false});
  trace.start();
  net.sim().run_until(3.0);
  std::string csv = trace.to_csv();
  // 1 header + 4 samples.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_EQ(csv.substr(0, 5), "time,");
}

TEST(Trace, WriteCsvStreamsIdenticalToToCsv) {
  NetworkSim net(topo::star(3));
  TraceRecorder trace(net);
  trace.start();
  net.sim().run_until(8.0);
  std::ostringstream streamed;
  trace.write_csv(streamed);
  EXPECT_EQ(streamed.str(), trace.to_csv());
  EXPECT_FALSE(streamed.str().empty());
}

TEST(Trace, StopHaltsSampling) {
  NetworkSim net(topo::star(2));
  TraceRecorder trace(net);
  trace.start();
  net.sim().run_until(12.0);
  trace.stop();
  auto count = trace.samples();
  net.sim().run_until(60.0);
  EXPECT_EQ(trace.samples(), count);
}

TEST(Trace, Rejections) {
  NetworkSim net(topo::star(2));
  EXPECT_THROW(TraceRecorder(net, TraceConfig{0.0, true, true}),
               std::invalid_argument);
  EXPECT_THROW(TraceRecorder(net, TraceConfig{1.0, false, false}),
               std::invalid_argument);
  TraceRecorder trace(net);
  trace.start();
  net.sim().run_until(1.0);
  EXPECT_THROW(trace.value(99, 0), std::out_of_range);
  EXPECT_THROW(trace.value(0, 999), std::out_of_range);
}

}  // namespace
}  // namespace netsel::sim
