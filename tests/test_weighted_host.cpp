// Tests for weighted (generalised) processor sharing — relaxing the
// paper's equal-priority assumption (§3.1) — and for what it does to the
// cpu = 1/(1+loadavg) function that selection relies on.

#include <gtest/gtest.h>

#include "remos/remos.hpp"
#include "sim/host.hpp"
#include "topo/generators.hpp"

namespace netsel::sim {
namespace {

struct Fixture : ::testing::Test {
  Simulator sim;
  HostConfig cfg{1.0, 60.0};
};

TEST_F(Fixture, EqualWeightsReproducePlainPS) {
  Host h(sim, cfg);
  double a = -1, b = -1;
  h.submit_weighted(4.0, 1.0, 0.0, kBackgroundOwner,
                    [&](JobId) { a = sim.now(); });
  h.submit_weighted(8.0, 1.0, 0.0, kBackgroundOwner,
                    [&](JobId) { b = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(a, 8.0);
  EXPECT_DOUBLE_EQ(b, 12.0);
}

TEST_F(Fixture, WeightsSplitTheProcessorProportionally) {
  // Weights 3:1 — the heavy job runs at 0.75, the light one at 0.25.
  Host h(sim, cfg);
  double heavy = -1, light = -1;
  JobId hj = h.submit_weighted(7.5, 3.0, 0.0, kBackgroundOwner,
                               [&](JobId) { heavy = sim.now(); });
  JobId lj = h.submit_weighted(5.0, 1.0, 0.0, kBackgroundOwner,
                               [&](JobId) { light = sim.now(); });
  EXPECT_DOUBLE_EQ(h.job_rate(hj), 0.75);
  EXPECT_DOUBLE_EQ(h.job_rate(lj), 0.25);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  sim.run();
  // Heavy: 7.5/0.75 = 10 s. Light: 2.5 done by t=10, then full speed:
  // 10 + 2.5 = 12.5 s.
  EXPECT_DOUBLE_EQ(heavy, 10.0);
  EXPECT_DOUBLE_EQ(light, 12.5);
}

TEST_F(Fixture, NicedBackgroundJobBarelySlowsTheApp) {
  // A weight-0.1 background job competes with a weight-1 app job: the app
  // keeps 1/1.1 of the CPU.
  Host h(sim, cfg);
  h.submit_weighted(1e9, 0.1, 0.0, kBackgroundOwner);
  double done = -1;
  h.submit_weighted(10.0, 1.0, 0.0, 5, [&](JobId) { done = sim.now(); });
  sim.run_until(12.0);
  EXPECT_NEAR(done, 11.0, 1e-9);
}

TEST_F(Fixture, LoadAverageCountsJobsNotWeights) {
  // UNIX load average counts runnable processes regardless of nice level —
  // so a niced competitor still raises loadavg to ~1 and the paper's
  // cpu = 1/(1+load) = 0.5 is pessimistic vs the true share 0.91.
  Host h(sim, cfg);
  h.submit_weighted(1e9, 0.1, 0.0, kBackgroundOwner);
  sim.run_until(600.0);
  EXPECT_NEAR(h.load_average(), 1.0, 1e-3);
  double paper_cpu = 1.0 / (1.0 + h.load_average());
  double true_share = 1.0 / (1.0 + 0.1);
  EXPECT_NEAR(paper_cpu, 0.5, 1e-3);
  EXPECT_GT(true_share, paper_cpu);
}

TEST_F(Fixture, WeightValidation) {
  Host h(sim, cfg);
  EXPECT_THROW(h.submit_weighted(1.0, 0.0, 0.0, kBackgroundOwner),
               std::invalid_argument);
  EXPECT_THROW(h.submit_weighted(1.0, -2.0, 0.0, kBackgroundOwner),
               std::invalid_argument);
  EXPECT_THROW(h.job_rate(999), std::invalid_argument);
}

TEST_F(Fixture, KillReleasesWeight) {
  Host h(sim, cfg);
  JobId a = h.submit_weighted(100.0, 3.0, 0.0, kBackgroundOwner);
  JobId b = h.submit_weighted(100.0, 1.0, 0.0, kBackgroundOwner);
  EXPECT_DOUBLE_EQ(h.job_rate(b), 0.25);
  h.kill(a);
  EXPECT_DOUBLE_EQ(h.total_weight(), 1.0);
  EXPECT_DOUBLE_EQ(h.job_rate(b), 1.0);
}

TEST_F(Fixture, MixedWeightsConserveWork) {
  // Total service is capacity * time regardless of weights.
  Host h(sim, cfg);
  util::Rng rng(5);
  double total = 0.0;
  int remaining = 12;
  for (int i = 0; i < 12; ++i) {
    double w = rng.uniform(0.1, 4.0);
    double demand = rng.uniform(0.5, 6.0);
    total += demand;
    h.submit_weighted(demand, w, 0.0, kBackgroundOwner,
                      [&](JobId) { --remaining; });
  }
  sim.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_NEAR(sim.now(), total, 1e-6);
}

TEST(WeightedEndToEnd, PaperCpuFunctionPessimisticUnderNicedLoad) {
  // Two identical hosts carry one competitor each: a full-weight one on
  // m-1, a heavily niced one on m-2. Remos (loadavg-based) sees the same
  // availability on both; the actual app runtime differs almost 2x.
  NetworkSim net(topo::testbed());
  auto m1 = net.topology().find_node("m-1").value();
  auto m2 = net.topology().find_node("m-2").value();
  net.host(m1).submit_weighted(1e9, 1.0, 0.0, kBackgroundOwner);
  net.host(m2).submit_weighted(1e9, 0.05, 0.0, kBackgroundOwner);
  remos::Remos remos(net);
  net.sim().run_until(600.0);
  remos.start();
  auto snap = remos.snapshot();
  EXPECT_NEAR(snap.cpu(m1), snap.cpu(m2), 1e-3)
      << "loadavg cannot distinguish niced competitors";
  // Run the same job on each node.
  double t1 = -1, t2 = -1;
  net.host(m1).submit(30.0, net.new_owner(),
                      [&](JobId) { t1 = net.sim().now(); });
  net.host(m2).submit(30.0, net.new_owner(),
                      [&](JobId) { t2 = net.sim().now(); });
  double start = net.sim().now();
  net.sim().run_until(start + 200.0);
  ASSERT_GT(t1, 0.0);
  ASSERT_GT(t2, 0.0);
  EXPECT_NEAR(t1 - start, 60.0, 1e-6);          // equal sharing: 2x
  EXPECT_NEAR(t2 - start, 30.0 * 1.05, 1e-6);   // niced competitor: ~1.05x
}

}  // namespace
}  // namespace netsel::sim
